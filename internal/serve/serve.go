// Package serve is the production read path: an in-memory columnar outage
// timeline store that is fed incrementally — one round at a time, as a live
// campaign lands data — and queried by many concurrent readers.
//
// The analysis pipeline (internal/signals) derives series on demand; serving
// millions of readers from it would rebuild or at least re-walk series per
// request. This package inverts that: each registered entity (country,
// region, AS or /24 block) owns flat per-round columns (BGP★/FBS■/IPS▲ plus
// the missing mask) that are copied from their Source exactly once, when the
// round is published via Advance. Rounds below the store's watermark are
// sealed: their cells never change again, which is what makes the HTTP
// layer's aggressive caching sound — responses covering only sealed rounds
// carry strong ETags and `Cache-Control: immutable`, and their rendered
// bytes are reused verbatim until evicted.
//
// The intended wiring for a live campaign is the streaming signals builder:
// Monitor folds each round into the warm series (O(blocks)), then
// Store.Advance copies the new round's values out of them (O(entities)).
// A finished campaign instead registers its series and seals everything with
// AdvanceTo. Published values are as-of-publication: a later FBS eligibility
// backfill refines the *analysis* view of earlier rounds, but a sealed round
// in the serving store is immutable, like any published time-series feed.
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"countrymon/internal/dataset"
	"countrymon/internal/signals"
	"countrymon/internal/timeline"
)

// Source supplies one entity's per-round signal values to the store. Sample
// is called once per round per entity, at Advance time; it must be able to
// answer for any round at or below the one being advanced.
type Source interface {
	// Sample returns the entity's signal values at round r and whether the
	// round carries no usable data.
	Sample(r int) (bgp, fbs, ips float32, missing bool)
	// IPSValidMonth reports whether the IPS signal is evaluated in dense
	// month m (re-copied on every Advance: month validity firms up as the
	// month's rounds land).
	IPSValidMonth(m int) bool
}

// Detector turns an entity's sealed series into outage events. The default
// is signals.Detect with the entity's configured thresholds; the IODA
// adapter plugs in its fixed-baseline variant.
type Detector func(es *signals.EntitySeries) *signals.Detection

// Entity is one registered timeline: a country, region, AS or /24 block.
// Its column cells at rounds below the store watermark are immutable.
type Entity struct {
	// Key is the canonical "type/code" identifier, e.g. "asn/6877".
	Key string
	// Type and Code are the key's halves.
	Type, Code string

	src      Source
	detector Detector

	// Columns, full campaign length; cells < watermark are sealed.
	bgp, fbs, ips []float32
	missing       []bool
	ipsValid      []bool

	// Cached detection over the sealed prefix (detMu; recomputed lazily
	// when the watermark has moved past detWM).
	detMu sync.Mutex
	det   *signals.Detection
	detWM int
}

// Store is the in-memory columnar timeline store. Registration and Advance
// take the write lock; queries take the read lock and only touch sealed
// cells, so readers never observe a half-published round.
type Store struct {
	tl *timeline.Timeline

	mu        sync.RWMutex
	entities  map[string]*Entity
	order     []string
	watermark int

	// epoch increments on every mutation (Advance or Register); the HTTP
	// layer tags mutable cached responses with it.
	epoch atomic.Uint64
}

// NewStore builds an empty store over the campaign timeline.
func NewStore(tl *timeline.Timeline) *Store {
	return &Store{tl: tl, entities: make(map[string]*Entity)}
}

// Timeline returns the campaign timeline.
func (s *Store) Timeline() *timeline.Timeline { return s.tl }

// EntityKey canonicalizes a type/code pair.
func EntityKey(typ, code string) string { return typ + "/" + code }

// Register adds an entity fed by src, using detect (nil = signals.Detect
// with cfg is NOT assumed; pass DetectWith(cfg) or a custom Detector) for
// the outage endpoint. Rounds already sealed are backfilled from src
// immediately, so late registration — e.g. an API server materializing
// entities on first request — serves the same bytes as eager registration.
// Registering an existing key returns the existing entity unchanged.
func (s *Store) Register(typ, code string, src Source, detect Detector) (*Entity, error) {
	if typ == "" || code == "" {
		return nil, fmt.Errorf("serve: empty entity type or code")
	}
	if src == nil {
		return nil, fmt.Errorf("serve: nil source for %s/%s", typ, code)
	}
	key := EntityKey(typ, code)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entities[key]; ok {
		return e, nil
	}
	rounds := s.tl.NumRounds()
	buf := make([]float32, 3*rounds)
	e := &Entity{
		Key: key, Type: typ, Code: code,
		src:      src,
		detector: detect,
		bgp:      buf[:rounds:rounds],
		fbs:      buf[rounds : 2*rounds : 2*rounds],
		ips:      buf[2*rounds:],
		missing:  make([]bool, rounds),
		ipsValid: make([]bool, s.tl.NumMonths()),
		detWM:    -1,
	}
	for r := 0; r < s.watermark; r++ {
		e.copyRound(r)
	}
	e.copyIPSValidity(s.tl.NumMonths())
	s.entities[key] = e
	s.order = append(s.order, key)
	s.epoch.Add(1)
	return e, nil
}

// DetectWith returns the standard Detector: signals.Detect at cfg.
func DetectWith(cfg signals.Config) Detector {
	return func(es *signals.EntitySeries) *signals.Detection { return signals.Detect(es, cfg) }
}

func (e *Entity) copyRound(r int) {
	bgp, fbs, ips, missing := e.src.Sample(r)
	e.bgp[r], e.fbs[r], e.ips[r], e.missing[r] = bgp, fbs, ips, missing
}

func (e *Entity) copyIPSValidity(months int) {
	for m := 0; m < months; m++ {
		e.ipsValid[m] = e.src.IPSValidMonth(m)
	}
}

// Advance publishes round: every entity's columns gain the round's values
// from their Source, and the watermark moves to round+1. Rounds between the
// old watermark and round are published too (a resumed campaign catches the
// store up in one call); re-advancing the last sealed round re-copies it,
// so replaying a checkpoint overlap is idempotent. Rounds strictly below
// watermark-1 are sealed and are not touched.
func (s *Store) Advance(round int) error {
	if round < 0 || round >= s.tl.NumRounds() {
		return fmt.Errorf("serve: Advance round %d out of range [0,%d)", round, s.tl.NumRounds())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if round+1 < s.watermark {
		return nil // already sealed
	}
	lo := s.watermark
	if round+1 == s.watermark {
		lo = round // idempotent re-publish of the newest sealed round
	}
	months := s.tl.NumMonths()
	for _, key := range s.order {
		e := s.entities[key]
		for r := lo; r <= round; r++ {
			e.copyRound(r)
		}
		e.copyIPSValidity(months)
	}
	if round+1 > s.watermark {
		s.watermark = round + 1
	}
	s.epoch.Add(1)
	return nil
}

// AdvanceTo seals every round below n — how a completed campaign's store is
// published in one call.
func (s *Store) AdvanceTo(n int) error {
	if n <= 0 {
		return nil
	}
	return s.Advance(n - 1)
}

// Watermark returns the number of sealed rounds: rounds [0, Watermark())
// are immutable and safe to cache forever.
func (s *Store) Watermark() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.watermark
}

// Epoch returns the mutation counter (bumped by Advance and Register).
func (s *Store) Epoch() uint64 { return s.epoch.Load() }

// Entity returns the registered entity for key, or nil.
func (s *Store) Entity(key string) *Entity {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.entities[key]
}

// Entities returns the registered entities in registration order.
func (s *Store) Entities() []*Entity {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Entity, len(s.order))
	for i, key := range s.order {
		out[i] = s.entities[key]
	}
	return out
}

// NumEntities returns the number of registered entities.
func (s *Store) NumEntities() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.order)
}

// Snapshot hands the caller a consistent read view: fn runs under the read
// lock with the current watermark, so Advance cannot interleave. The
// entity's sealed columns may be read directly inside fn.
func (s *Store) Snapshot(fn func(watermark int)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fn(s.watermark)
}

// view builds the sealed-prefix series view used by detection. Caller must
// hold the store read lock.
func (e *Entity) view(tl *timeline.Timeline, wm int) *signals.EntitySeries {
	return &signals.EntitySeries{
		Name:          e.Key,
		TL:            tl,
		BGP:           e.bgp[:wm:wm],
		FBS:           e.fbs[:wm:wm],
		IPS:           e.ips[:wm:wm],
		IPSValidMonth: e.ipsValid,
		Missing:       e.missing[:wm:wm],
	}
}

// BGP returns the entity's sealed BGP value at round r (r < Watermark()).
func (e *Entity) BGP(r int) float32 { return e.bgp[r] }

// FBS returns the entity's sealed FBS value at round r.
func (e *Entity) FBS(r int) float32 { return e.fbs[r] }

// IPS returns the entity's sealed IPS value at round r.
func (e *Entity) IPS(r int) float32 { return e.ips[r] }

// Missing reports whether sealed round r carries no usable data.
func (e *Entity) Missing(r int) bool { return e.missing[r] }

// Detection returns the entity's outage detection over the sealed prefix,
// memoized per watermark: the first query after a round lands pays one
// O(sealed rounds) detection run, every later query reuses it. Entities
// registered without a Detector return an empty detection.
func (s *Store) Detection(e *Entity) *signals.Detection {
	s.mu.RLock()
	wm := s.watermark
	s.mu.RUnlock()

	e.detMu.Lock()
	defer e.detMu.Unlock()
	if e.det != nil && e.detWM == wm {
		return e.det
	}
	if e.detector == nil || wm == 0 {
		e.det, e.detWM = &signals.Detection{Flags: make([]signals.Kind, wm)}, wm
		return e.det
	}
	// Re-acquire the read lock for the compute so Advance cannot rewrite
	// ipsValid mid-detection. Sealed column cells are stable regardless.
	s.mu.RLock()
	es := e.view(s.tl, wm)
	det := e.detector(es)
	s.mu.RUnlock()
	e.det, e.detWM = det, wm
	return det
}

// --- Sources ---

// seriesSource adapts a built signals.EntitySeries (batch or warm streaming)
// into a Source.
type seriesSource struct{ es *signals.EntitySeries }

// SeriesSource feeds an entity from a derived signal series. With the
// streaming builder the same series object stays warm across the campaign,
// so sampling round r after Fold(r) reads the freshly folded values.
func SeriesSource(es *signals.EntitySeries) Source { return seriesSource{es} }

func (s seriesSource) Sample(r int) (float32, float32, float32, bool) {
	return s.es.BGP[r], s.es.FBS[r], s.es.IPS[r], s.es.Missing[r]
}

func (s seriesSource) IPSValidMonth(m int) bool { return s.es.IPSValidMonth[m] }

// sumSource aggregates member sources: the country-level feed is the sum of
// its AS series. A round is missing only when every member is missing; IPS
// months are valid when any member's are.
type sumSource struct{ members []Source }

// SumSource aggregates member sources by summation (country = Σ ASes).
func SumSource(members ...Source) Source {
	return sumSource{members: append([]Source(nil), members...)}
}

func (s sumSource) Sample(r int) (float32, float32, float32, bool) {
	var bgp, fbs, ips float32
	allMissing := true
	for _, m := range s.members {
		b, f, i, miss := m.Sample(r)
		if miss {
			continue
		}
		allMissing = false
		bgp += b
		fbs += f
		ips += i
	}
	if allMissing {
		return 0, 0, 0, true
	}
	return bgp, fbs, ips, false
}

func (s sumSource) IPSValidMonth(m int) bool {
	for _, mem := range s.members {
		if mem.IPSValidMonth(m) {
			return true
		}
	}
	return false
}

// blockSource feeds an entity straight from the raw dataset store: one /24's
// routedness (BGP 0/1), full-block activity (FBS 0/1) and responsive count
// (IPS), coverage-gated like the signal pipeline.
type blockSource struct {
	st          *dataset.Store
	bi          int
	minCoverage float64
}

// BlockSource serves a single /24's raw timeline from the dataset store;
// rounds below minCoverage count as missing, matching signal derivation.
func BlockSource(st *dataset.Store, bi int, minCoverage float64) Source {
	return blockSource{st: st, bi: bi, minCoverage: minCoverage}
}

func (b blockSource) Sample(r int) (float32, float32, float32, bool) {
	if b.st.EffectiveMissingAt(r, b.minCoverage) {
		return 0, 0, 0, true
	}
	var bgp, fbs float32
	if b.st.Routed(b.bi, r) {
		bgp = 1
	}
	resp := b.st.Resp(b.bi, r)
	if resp > 0 {
		fbs = 1
	}
	return bgp, fbs, float32(resp), false
}

func (b blockSource) IPSValidMonth(m int) bool { return false }
