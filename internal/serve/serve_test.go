package serve

import (
	"testing"
	"time"

	"countrymon/internal/signals"
	"countrymon/internal/timeline"
)

// testTimeline spans two calendar months at 12h rounds: big enough for
// month-boundary behaviour, small enough to render fast.
func testTimeline() *timeline.Timeline {
	start := time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(2022, 4, 20, 0, 0, 0, 0, time.UTC)
	return timeline.New(start, end, 12*time.Hour)
}

// patternSource is a deterministic synthetic Source: every round's values
// are a pure function of (round, salt), with every 17th round missing.
type patternSource struct{ salt int }

func (s patternSource) Sample(r int) (float32, float32, float32, bool) {
	if (r+s.salt)%17 == 3 {
		return 0, 0, 0, true
	}
	return float32(10 + (r+s.salt)%5), float32(6 + (r+s.salt)%3), float32(100 + (r+s.salt)%7), false
}

func (s patternSource) IPSValidMonth(m int) bool { return (m+s.salt)%2 == 0 }

func TestStoreAdvanceSeals(t *testing.T) {
	st := NewStore(testTimeline())
	e, err := st.Register("asn", "6877", patternSource{1}, DetectWith(signals.ASConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if st.Watermark() != 0 {
		t.Fatalf("fresh store watermark = %d", st.Watermark())
	}
	if err := st.Advance(9); err != nil {
		t.Fatal(err)
	}
	if st.Watermark() != 10 {
		t.Fatalf("watermark = %d, want 10", st.Watermark())
	}
	for r := 0; r < 10; r++ {
		bgp, fbs, ips, miss := patternSource{1}.Sample(r)
		if e.BGP(r) != bgp || e.FBS(r) != fbs || e.IPS(r) != ips || e.Missing(r) != miss {
			t.Fatalf("round %d: stored (%v,%v,%v,%v) != source (%v,%v,%v,%v)",
				r, e.BGP(r), e.FBS(r), e.IPS(r), e.Missing(r), bgp, fbs, ips, miss)
		}
	}
	// Idempotent re-advance of the newest sealed round and no-op for older.
	if err := st.Advance(9); err != nil {
		t.Fatal(err)
	}
	if err := st.Advance(4); err != nil {
		t.Fatal(err)
	}
	if st.Watermark() != 10 {
		t.Fatalf("watermark moved to %d after replays", st.Watermark())
	}
	if err := st.Advance(st.Timeline().NumRounds()); err == nil {
		t.Fatal("out-of-range Advance did not error")
	}
}

func TestRegisterBackfillsSealedRounds(t *testing.T) {
	tl := testTimeline()
	eager := NewStore(tl)
	e1, _ := eager.Register("asn", "1", patternSource{7}, nil)
	if err := eager.AdvanceTo(25); err != nil {
		t.Fatal(err)
	}

	lazy := NewStore(tl)
	if err := lazy.AdvanceTo(25); err != nil {
		t.Fatal(err)
	}
	e2, _ := lazy.Register("asn", "1", patternSource{7}, nil)

	for r := 0; r < 25; r++ {
		if e1.BGP(r) != e2.BGP(r) || e1.FBS(r) != e2.FBS(r) || e1.IPS(r) != e2.IPS(r) || e1.Missing(r) != e2.Missing(r) {
			t.Fatalf("round %d: eager and late registration disagree", r)
		}
	}
}

func TestRegisterDuplicateAndValidation(t *testing.T) {
	st := NewStore(testTimeline())
	a, err := st.Register("asn", "1", patternSource{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.Register("asn", "1", patternSource{99}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("duplicate registration returned a new entity")
	}
	if _, err := st.Register("", "1", patternSource{0}, nil); err == nil {
		t.Fatal("empty type accepted")
	}
	if _, err := st.Register("asn", "1x", nil, nil); err == nil {
		t.Fatal("nil source accepted")
	}
}

func TestSumSource(t *testing.T) {
	s := SumSource(patternSource{1}, patternSource{2})
	// Round where neither member is missing.
	b1, f1, i1, _ := patternSource{1}.Sample(0)
	b2, f2, i2, _ := patternSource{2}.Sample(0)
	bgp, fbs, ips, miss := s.Sample(0)
	if miss || bgp != b1+b2 || fbs != f1+f2 || ips != i1+i2 {
		t.Fatalf("sum sample wrong: got (%v,%v,%v,%v)", bgp, fbs, ips, miss)
	}
	// Round 2 is missing for salt 1 only: the sum is the other member alone.
	if _, _, _, m := (patternSource{1}).Sample(2); !m {
		t.Fatal("fixture assumption broken: salt-1 round 2 should be missing")
	}
	bgp, _, _, miss = s.Sample(2)
	if miss || bgp != b2+2 { // salt-2 round 2: 10+(2+2)%5 = 14 = b2+2
		t.Fatalf("partial-missing sum wrong: (%v, miss=%v)", bgp, miss)
	}
	// Salt-1 is valid in odd months, salt-2 in even: the OR covers both.
	if !s.IPSValidMonth(0) || !s.IPSValidMonth(1) {
		t.Fatal("sum IPS validity should OR the members")
	}
	if SumSource(patternSource{1}).IPSValidMonth(0) {
		t.Fatal("single-member sum should keep the member's invalid months")
	}
}

// TestDetectionMemoized checks detection runs once per watermark position.
func TestDetectionMemoized(t *testing.T) {
	st := NewStore(testTimeline())
	calls := 0
	det := func(es *signals.EntitySeries) *signals.Detection {
		calls++
		return &signals.Detection{
			Flags:   make([]signals.Kind, len(es.BGP)),
			Outages: []signals.Outage{{Start: 1, End: 2, Signals: signals.SignalBGP}},
		}
	}
	e, _ := st.Register("region", "Kherson", patternSource{3}, det)
	if err := st.AdvanceTo(20); err != nil {
		t.Fatal(err)
	}
	d1 := st.Detection(e)
	d2 := st.Detection(e)
	if d1 != d2 || calls != 1 {
		t.Fatalf("detection not memoized: %d calls", calls)
	}
	if len(d1.Outages) != 1 {
		t.Fatalf("custom detector result lost: %+v", d1.Outages)
	}
	if err := st.Advance(20); err != nil {
		t.Fatal(err)
	}
	if st.Detection(e) == d1 || calls != 2 {
		t.Fatalf("detection not recomputed after Advance: %d calls", calls)
	}
}

// TestSealedViewDetection runs the real detector over a store view and the
// identical hand-built EntitySeries, expecting identical outages.
func TestSealedViewDetection(t *testing.T) {
	tl := testTimeline()
	rounds := tl.NumRounds()
	st := NewStore(tl)
	src := patternSource{5}
	e, _ := st.Register("asn", "42", src, DetectWith(signals.ASConfig()))
	if err := st.AdvanceTo(rounds); err != nil {
		t.Fatal(err)
	}

	es := &signals.EntitySeries{
		Name: "asn/42", TL: tl,
		BGP: make([]float32, rounds), FBS: make([]float32, rounds), IPS: make([]float32, rounds),
		IPSValidMonth: make([]bool, tl.NumMonths()),
		Missing:       make([]bool, rounds),
	}
	for r := 0; r < rounds; r++ {
		es.BGP[r], es.FBS[r], es.IPS[r], es.Missing[r] = src.Sample(r)
	}
	for m := 0; m < tl.NumMonths(); m++ {
		es.IPSValidMonth[m] = src.IPSValidMonth(m)
	}
	want := signals.Detect(es, signals.ASConfig())
	got := st.Detection(e)
	if len(got.Outages) != len(want.Outages) {
		t.Fatalf("outage count %d != %d", len(got.Outages), len(want.Outages))
	}
	for i := range want.Outages {
		if got.Outages[i] != want.Outages[i] {
			t.Fatalf("outage %d: %+v != %+v", i, got.Outages[i], want.Outages[i])
		}
	}
}
