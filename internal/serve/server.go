package serve

import (
	"fmt"
	"hash/fnv"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"countrymon/internal/obs"
	"countrymon/internal/signals"
	"countrymon/internal/timeline"
)

// Pagination bounds for /v1/series round windows.
const (
	// DefaultSeriesLimit is the page size when the client omits ?limit.
	DefaultSeriesLimit = 2048
	// MaxSeriesLimit is the hard per-page cap; larger ?limit values clamp.
	MaxSeriesLimit = 8192
)

// Server is the HTTP query API over a serve.Store:
//
//	/v1/entities               registered entities (?type= filter)
//	/v1/series                 columnar signal window for one entity
//	                           (?entity=, ?from=/?until= unix seconds,
//	                           ?since=N delta mode, ?limit=/?offset=)
//	/v1/outages                detected outage events for one entity
//	/v1/events                 live SSE / long-poll fan-out (obs bus)
//	/metrics                   registry export
//
// Every JSON response is rendered once per (query, store state) and cached:
// responses whose round window is pinned entirely inside sealed history are
// immutable — strong ETag, `Cache-Control: immutable`, never re-rendered —
// while live-edge responses are epoch-tagged and invalidate when a round
// lands. The cached path re-serves bytes without allocating.
type Server struct {
	store *Store
	mux   *http.ServeMux
	bus   *obs.Bus
	reg   *obs.Registry

	seriesCache   *respCache
	outagesCache  *respCache
	entitiesCache *respCache

	// Pre-resolved metric children: the hot path must not pay CounterVec
	// label resolution per request. All nil (and nil-safe) until Observe.
	reqSeries, reqOutages, reqEntities, reqEvents *obs.Counter
	cacheHits, cacheMisses                        *obs.Counter
	watermarkG                                    *obs.Gauge
	liveClients                                   *obs.Gauge
}

// NewServer builds the query API over store.
func NewServer(store *Store) *Server {
	s := &Server{
		store:         store,
		mux:           http.NewServeMux(),
		seriesCache:   newRespCache(0),
		outagesCache:  newRespCache(0),
		entitiesCache: newRespCache(0),
	}
	s.mux.HandleFunc("/v1/series", s.handleSeries)
	s.mux.HandleFunc("/v1/outages", s.handleOutages)
	s.mux.HandleFunc("/v1/entities", s.handleEntities)
	s.mux.HandleFunc("/v1/events", s.handleEvents)
	s.mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		obs.MetricsHandler(s.reg).ServeHTTP(w, r)
	})
	s.mux.HandleFunc("/", s.handleIndex)
	return s
}

// Store returns the underlying timeline store.
func (s *Server) Store() *Store { return s.store }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Observe registers the serving metrics and attaches the live event bus:
// bus drops are mirrored into bus_dropped_events_total so slow-subscriber
// pressure shows up in /metrics.
func (s *Server) Observe(reg *obs.Registry, bus *obs.Bus) {
	s.reg = reg
	s.bus = bus
	req := reg.CounterVec("serve_requests_total", "Serve-API requests, by endpoint.", "endpoint")
	s.reqSeries = req.With("series")
	s.reqOutages = req.With("outages")
	s.reqEntities = req.With("entities")
	s.reqEvents = req.With("events")
	s.cacheHits = reg.Counter("serve_cache_hits_total", "Serve responses answered from the rendered-bytes cache.")
	s.cacheMisses = reg.Counter("serve_cache_misses_total", "Serve responses that had to be rendered.")
	s.watermarkG = reg.Gauge("serve_watermark", "Sealed rounds visible to the serve API.")
	s.liveClients = reg.Gauge("serve_live_clients", "Currently connected /v1/events clients.")
	bus.CountDrops(reg.Counter("bus_dropped_events_total", "Events dropped from lagging event-bus subscriber channels (the ring retains them)."))
	s.watermarkG.Set(int64(s.store.Watermark()))
}

// --- /v1/series ---

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	s.reqSeries.Inc()
	key := r.URL.RawQuery
	epoch := s.store.epoch.Load()
	if e := s.seriesCache.get(key, epoch); e != nil {
		s.cacheHits.Inc()
		writeEntry(w, r, e)
		return
	}
	s.cacheMisses.Inc()
	e, status, msg := s.renderSeries(key, epoch)
	if e == nil {
		writeError(w, status, msg)
		return
	}
	s.seriesCache.put(key, e)
	writeEntry(w, r, e)
}

func (s *Server) renderSeries(rawQuery string, epoch uint64) (*cacheEntry, int, string) {
	q, err := url.ParseQuery(rawQuery)
	if err != nil {
		return nil, http.StatusBadRequest, "malformed query"
	}
	ent := s.store.Entity(q.Get("entity"))
	if ent == nil {
		if q.Get("entity") == "" {
			return nil, http.StatusBadRequest, "missing entity parameter"
		}
		return nil, http.StatusNotFound, "unknown entity " + q.Get("entity")
	}
	limit, ok := intParam(q, "limit", DefaultSeriesLimit)
	if !ok || limit <= 0 {
		return nil, http.StatusBadRequest, "invalid limit"
	}
	if limit > MaxSeriesLimit {
		limit = MaxSeriesLimit
	}
	offset, ok := intParam(q, "offset", 0)
	if !ok || offset < 0 {
		return nil, http.StatusBadRequest, "invalid offset"
	}
	tl := s.store.tl

	// Window selection, before looking at the watermark: either delta mode
	// (?since=N → all sealed rounds from N on) or a time range. A ?until
	// that lands inside sealed history pins the window — only then can the
	// response be immutable.
	sinceRound := -1
	if v := q.Get("since"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return nil, http.StatusBadRequest, "invalid since"
		}
		sinceRound = n
	}
	fromRound := 0
	if v := q.Get("from"); v != "" {
		sec, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, http.StatusBadRequest, "invalid from"
		}
		fromRound = tl.Round(time.Unix(sec, 0))
	}
	untilRound := -1
	if v := q.Get("until"); v != "" {
		sec, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, http.StatusBadRequest, "invalid until"
		}
		untilRound = tl.Round(time.Unix(sec, 0))
	}

	var entry *cacheEntry
	s.store.Snapshot(func(wm int) {
		s.watermarkG.Set(int64(wm))
		lo, hi, pinned := 0, wm, false
		switch {
		case sinceRound >= 0:
			lo = min(sinceRound, wm)
		default:
			lo = min(fromRound, wm)
			if untilRound >= 0 && untilRound+1 <= wm {
				hi, pinned = untilRound+1, true
			}
		}
		if lo > hi {
			lo = hi
		}
		total := hi - lo
		start := min(lo+offset, hi)
		end := min(start+limit, hi)

		// Immutable only when the window is pinned in sealed history AND the
		// months it touches are complete: IPS month validity still firms up
		// while a month's rounds are landing.
		immutable := pinned
		if end > start {
			_, mhi := tl.MonthRounds(tl.MonthOfRound(end - 1))
			immutable = pinned && mhi <= wm
		}
		body := appendSeriesJSON(make([]byte, 0, 256+32*(end-start)), ent, tl, wm, total, offset, limit, start, end)
		entry = newEntry(body, immutable, epoch)
	})
	return entry, 0, ""
}

func appendSeriesJSON(b []byte, e *Entity, tl *timeline.Timeline, wm, total, offset, limit, start, end int) []byte {
	b = append(b, `{"entity":`...)
	b = strconv.AppendQuote(b, e.Key)
	b = append(b, `,"watermark":`...)
	b = strconv.AppendInt(b, int64(wm), 10)
	b = append(b, `,"total":`...)
	b = strconv.AppendInt(b, int64(total), 10)
	b = append(b, `,"offset":`...)
	b = strconv.AppendInt(b, int64(offset), 10)
	b = append(b, `,"limit":`...)
	b = strconv.AppendInt(b, int64(limit), 10)
	b = append(b, `,"start_round":`...)
	b = strconv.AppendInt(b, int64(start), 10)
	b = append(b, `,"count":`...)
	b = strconv.AppendInt(b, int64(end-start), 10)
	b = append(b, `,"time":[`...)
	for r := start; r < end; r++ {
		if r > start {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, tl.Time(r).Unix(), 10)
	}
	b = append(b, `],"bgp":[`...)
	b = appendFloatCol(b, e.bgp[start:end])
	b = append(b, `],"fbs":[`...)
	b = appendFloatCol(b, e.fbs[start:end])
	b = append(b, `],"ips":[`...)
	b = appendFloatCol(b, e.ips[start:end])
	b = append(b, `],"missing":[`...)
	for r := start; r < end; r++ {
		if r > start {
			b = append(b, ',')
		}
		b = strconv.AppendBool(b, e.missing[r])
	}
	b = append(b, `],"ips_valid":[`...)
	for r := start; r < end; r++ {
		if r > start {
			b = append(b, ',')
		}
		b = strconv.AppendBool(b, e.ipsValid[tl.MonthOfRound(r)])
	}
	b = append(b, `]}`...)
	return b
}

func appendFloatCol(b []byte, vals []float32) []byte {
	for i, v := range vals {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendFloat(b, float64(v), 'g', -1, 32)
	}
	return b
}

// --- /v1/outages ---

func (s *Server) handleOutages(w http.ResponseWriter, r *http.Request) {
	s.reqOutages.Inc()
	key := r.URL.RawQuery
	epoch := s.store.epoch.Load()
	if e := s.outagesCache.get(key, epoch); e != nil {
		s.cacheHits.Inc()
		writeEntry(w, r, e)
		return
	}
	s.cacheMisses.Inc()
	e, status, msg := s.renderOutages(key, epoch)
	if e == nil {
		writeError(w, status, msg)
		return
	}
	s.outagesCache.put(key, e)
	writeEntry(w, r, e)
}

func (s *Server) renderOutages(rawQuery string, epoch uint64) (*cacheEntry, int, string) {
	q, err := url.ParseQuery(rawQuery)
	if err != nil {
		return nil, http.StatusBadRequest, "malformed query"
	}
	ent := s.store.Entity(q.Get("entity"))
	if ent == nil {
		if q.Get("entity") == "" {
			return nil, http.StatusBadRequest, "missing entity parameter"
		}
		return nil, http.StatusNotFound, "unknown entity " + q.Get("entity")
	}
	det := s.store.Detection(ent)
	tl := s.store.tl
	wm := len(det.Flags)
	b := append([]byte(nil), `{"entity":`...)
	b = strconv.AppendQuote(b, ent.Key)
	b = append(b, `,"watermark":`...)
	b = strconv.AppendInt(b, int64(wm), 10)
	b = append(b, `,"outages":[`...)
	for i, o := range det.Outages {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"start_round":`...)
		b = strconv.AppendInt(b, int64(o.Start), 10)
		b = append(b, `,"end_round":`...)
		b = strconv.AppendInt(b, int64(o.End), 10)
		b = append(b, `,"start":`...)
		b = strconv.AppendInt(b, tl.Time(o.Start).Unix(), 10)
		b = append(b, `,"end":`...)
		b = strconv.AppendInt(b, tl.Time(o.End-1).Add(tl.Interval()).Unix(), 10)
		b = append(b, `,"signals":`...)
		b = strconv.AppendQuote(b, kindToken(o.Signals))
		b = append(b, `,"ongoing":`...)
		b = strconv.AppendBool(b, o.Ongoing)
		b = append(b, '}')
	}
	b = append(b, `]}`...)
	// Outage detection spans the whole sealed prefix, so the response always
	// tracks the watermark: mutable tier.
	return newEntry(b, false, epoch), 0, ""
}

// --- /v1/entities ---

func (s *Server) handleEntities(w http.ResponseWriter, r *http.Request) {
	s.reqEntities.Inc()
	key := r.URL.RawQuery
	epoch := s.store.epoch.Load()
	if e := s.entitiesCache.get(key, epoch); e != nil {
		s.cacheHits.Inc()
		writeEntry(w, r, e)
		return
	}
	s.cacheMisses.Inc()
	e, status, msg := s.renderEntities(key, epoch)
	if e == nil {
		writeError(w, status, msg)
		return
	}
	s.entitiesCache.put(key, e)
	writeEntry(w, r, e)
}

func (s *Server) renderEntities(rawQuery string, epoch uint64) (*cacheEntry, int, string) {
	q, err := url.ParseQuery(rawQuery)
	if err != nil {
		return nil, http.StatusBadRequest, "malformed query"
	}
	typ := q.Get("type")
	var b []byte
	s.store.Snapshot(func(wm int) {
		s.watermarkG.Set(int64(wm))
		b = append(b, `{"watermark":`...)
		b = strconv.AppendInt(b, int64(wm), 10)
		b = append(b, `,"entities":[`...)
		n := 0
		for _, key := range s.store.order {
			e := s.store.entities[key]
			if typ != "" && e.Type != typ {
				continue
			}
			if n > 0 {
				b = append(b, ',')
			}
			n++
			b = append(b, `{"key":`...)
			b = strconv.AppendQuote(b, e.Key)
			b = append(b, `,"type":`...)
			b = strconv.AppendQuote(b, e.Type)
			b = append(b, `,"code":`...)
			b = strconv.AppendQuote(b, e.Code)
			b = append(b, '}')
		}
		b = append(b, `],"count":`...)
		b = strconv.AppendInt(b, int64(n), 10)
		b = append(b, '}')
	})
	return newEntry(b, false, epoch), 0, ""
}

// --- /v1/events ---

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.reqEvents.Inc()
	s.liveClients.Add(1)
	defer s.liveClients.Add(-1)
	obs.EventsHandler(s.bus).ServeHTTP(w, r)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "countrymon serving API")
	fmt.Fprintln(w, "")
	fmt.Fprintln(w, "  /v1/entities?type=asn            registered entities")
	fmt.Fprintln(w, "  /v1/series?entity=asn/6877       columnar signals (&from=&until= unix,")
	fmt.Fprintln(w, "                                   &since=N delta, &limit=&offset= rounds)")
	fmt.Fprintln(w, "  /v1/outages?entity=region/Kyiv   detected outage events")
	fmt.Fprintln(w, "  /v1/events                       live SSE (?since=N replay, ?format=json long-poll)")
	fmt.Fprintln(w, "  /metrics                         Prometheus text (?format=json)")
}

// --- shared helpers ---

func newEntry(body []byte, immutable bool, epoch uint64) *cacheEntry {
	h := fnv.New64a()
	h.Write(body)
	return &cacheEntry{
		body:        body,
		etag:        []string{`"` + strconv.FormatUint(h.Sum64(), 16) + `"`},
		contentType: ctJSON,
		immutable:   immutable,
		epoch:       epoch,
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b := []byte(`{"error":`)
	b = strconv.AppendQuote(b, msg)
	b = append(b, '}')
	w.Write(b)
}

func intParam(q url.Values, name string, def int) (int, bool) {
	v := q.Get(name)
	if v == "" {
		return def, true
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, false
	}
	return n, true
}

// kindToken renders a signal mask as a compact API token ("bgp+fbs") —
// ASCII, unlike Kind.String's display glyphs.
func kindToken(k signals.Kind) string {
	var parts [3]string
	n := 0
	if k.Has(signals.SignalBGP) {
		parts[n] = "bgp"
		n++
	}
	if k.Has(signals.SignalFBS) {
		parts[n] = "fbs"
		n++
	}
	if k.Has(signals.SignalIPS) {
		parts[n] = "ips"
		n++
	}
	if n == 0 {
		return "none"
	}
	return strings.Join(parts[:n], "+")
}
