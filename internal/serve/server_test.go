package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"countrymon/internal/obs"
	"countrymon/internal/signals"
)

type seriesResp struct {
	Entity     string    `json:"entity"`
	Watermark  int       `json:"watermark"`
	Total      int       `json:"total"`
	Offset     int       `json:"offset"`
	Limit      int       `json:"limit"`
	StartRound int       `json:"start_round"`
	Count      int       `json:"count"`
	Time       []int64   `json:"time"`
	BGP        []float32 `json:"bgp"`
	FBS        []float32 `json:"fbs"`
	IPS        []float32 `json:"ips"`
	Missing    []bool    `json:"missing"`
	IPSValid   []bool    `json:"ips_valid"`
}

func newTestServer(t *testing.T, sealed int) (*Server, *Store) {
	t.Helper()
	st := NewStore(testTimeline())
	if _, err := st.Register("asn", "6877", patternSource{1}, DetectWith(signals.ASConfig())); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Register("region", "Kherson", patternSource{2}, DetectWith(signals.RegionConfig())); err != nil {
		t.Fatal(err)
	}
	if err := st.AdvanceTo(sealed); err != nil {
		t.Fatal(err)
	}
	return NewServer(st), st
}

func get(t *testing.T, s *Server, url string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	return rec
}

func getSeries(t *testing.T, s *Server, url string) (seriesResp, *httptest.ResponseRecorder) {
	t.Helper()
	rec := get(t, s, url)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, rec.Code, rec.Body.String())
	}
	var out seriesResp
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("GET %s: bad JSON: %v\n%s", url, err, rec.Body.String())
	}
	return out, rec
}

func TestSeriesEndpoint(t *testing.T) {
	s, st := newTestServer(t, 40)
	out, _ := getSeries(t, s, "/v1/series?entity=asn/6877")
	if out.Entity != "asn/6877" || out.Watermark != 40 || out.Total != 40 || out.Count != 40 {
		t.Fatalf("snapshot header wrong: %+v", out)
	}
	tl := st.Timeline()
	for i := 0; i < out.Count; i++ {
		bgp, fbs, ips, miss := (patternSource{1}).Sample(i)
		if out.BGP[i] != bgp || out.FBS[i] != fbs || out.IPS[i] != ips || out.Missing[i] != miss {
			t.Fatalf("round %d values wrong", i)
		}
		if out.Time[i] != tl.Time(i).Unix() {
			t.Fatalf("round %d time wrong", i)
		}
		if out.IPSValid[i] != (patternSource{1}).IPSValidMonth(tl.MonthOfRound(i)) {
			t.Fatalf("round %d ips_valid wrong", i)
		}
	}
}

func TestSeriesPagination(t *testing.T) {
	s, _ := newTestServer(t, 40)
	var got []float32
	pages := 0
	for off := 0; ; {
		out, _ := getSeries(t, s, "/v1/series?entity=asn/6877&limit=12&offset="+strconv.Itoa(off))
		if out.Total != 40 || out.Limit != 12 || out.Offset != off {
			t.Fatalf("page header wrong: %+v", out)
		}
		got = append(got, out.IPS...)
		pages++
		off += out.Count
		if out.Count < 12 {
			break
		}
	}
	if pages != 4 || len(got) != 40 {
		t.Fatalf("pagination walked %d pages, %d rounds", pages, len(got))
	}
	full, _ := getSeries(t, s, "/v1/series?entity=asn/6877")
	for i := range full.IPS {
		if got[i] != full.IPS[i] {
			t.Fatalf("paged value %d differs from snapshot", i)
		}
	}
}

func TestSeriesDelta(t *testing.T) {
	s, st := newTestServer(t, 30)
	out, _ := getSeries(t, s, "/v1/series?entity=asn/6877&since=25")
	if out.StartRound != 25 || out.Count != 5 || out.Watermark != 30 {
		t.Fatalf("delta wrong: %+v", out)
	}
	// The returned watermark is the next poll's since: empty until new data.
	out, _ = getSeries(t, s, "/v1/series?entity=asn/6877&since="+strconv.Itoa(out.Watermark))
	if out.Count != 0 {
		t.Fatalf("caught-up delta returned %d rounds", out.Count)
	}
	// A landed round appears in the next delta.
	if err := st.Advance(30); err != nil {
		t.Fatal(err)
	}
	out, _ = getSeries(t, s, "/v1/series?entity=asn/6877&since=30")
	if out.Count != 1 || out.StartRound != 30 || out.Watermark != 31 {
		t.Fatalf("post-advance delta wrong: %+v", out)
	}
}

func TestSeriesErrors(t *testing.T) {
	s, _ := newTestServer(t, 10)
	for url, want := range map[string]int{
		"/v1/series":                              http.StatusBadRequest,
		"/v1/series?entity=asn/999":               http.StatusNotFound,
		"/v1/series?entity=asn/6877&limit=0":      http.StatusBadRequest,
		"/v1/series?entity=asn/6877&limit=x":      http.StatusBadRequest,
		"/v1/series?entity=asn/6877&offset=-1":    http.StatusBadRequest,
		"/v1/series?entity=asn/6877&since=-2":     http.StatusBadRequest,
		"/v1/series?entity=asn/6877&from=notunix": http.StatusBadRequest,
		"/v1/outages?entity=nope/x":               http.StatusNotFound,
	} {
		rec := get(t, s, url)
		if rec.Code != want {
			t.Errorf("GET %s = %d, want %d", url, rec.Code, want)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("GET %s: error body not JSON: %s", url, rec.Body.String())
		}
	}
}

func TestCachingSemantics(t *testing.T) {
	s, st := newTestServer(t, 70)
	tl := st.Timeline()

	// A window pinned inside sealed, month-complete history is immutable.
	_, mhi := tl.MonthRounds(0)
	if mhi > 70 {
		t.Fatalf("fixture: first month (%d rounds) not sealed", mhi)
	}
	until := tl.Time(mhi - 1).Unix()
	immURL := "/v1/series?entity=asn/6877&from=" + strconv.FormatInt(tl.Time(0).Unix(), 10) + "&until=" + strconv.FormatInt(until, 10)
	_, rec := getSeries(t, s, immURL)
	if cc := rec.Header().Get("Cache-Control"); !strings.Contains(cc, "immutable") {
		t.Fatalf("sealed-window Cache-Control = %q", cc)
	}
	etag := rec.Header().Get("Etag")
	if etag == "" {
		t.Fatal("no ETag on sealed-window response")
	}

	// Conditional revalidation: If-None-Match returns 304 with no body.
	req := httptest.NewRequest("GET", immURL, nil)
	req.Header.Set("If-None-Match", etag)
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusNotModified || rec2.Body.Len() != 0 {
		t.Fatalf("revalidation = %d, body %d bytes", rec2.Code, rec2.Body.Len())
	}

	// The live-edge snapshot is mutable and must change when a round lands.
	liveURL := "/v1/series?entity=asn/6877&since=65"
	_, live1 := getSeries(t, s, liveURL)
	if cc := live1.Header().Get("Cache-Control"); strings.Contains(cc, "immutable") {
		t.Fatalf("live-edge response marked immutable: %q", cc)
	}
	_, live2 := getSeries(t, s, liveURL)
	if live1.Body.String() != live2.Body.String() {
		t.Fatal("identical queries served different bytes")
	}
	if err := st.Advance(70); err != nil {
		t.Fatal(err)
	}
	out, live3 := getSeries(t, s, liveURL)
	if live3.Body.String() == live1.Body.String() || out.Watermark != 71 {
		t.Fatal("cached live-edge response survived Advance")
	}
	// The immutable response is byte-identical across the Advance.
	_, rec3 := getSeries(t, s, immURL)
	if rec3.Body.String() != rec.Body.String() || rec3.Header().Get("Etag") != etag {
		t.Fatal("immutable response changed after Advance")
	}
}

func TestCacheHitServesIdenticalBytes(t *testing.T) {
	s, _ := newTestServer(t, 40)
	reg := obs.NewRegistry()
	s.Observe(reg, obs.NewBus(16))
	url := "/v1/series?entity=region/Kherson&limit=10"
	_, a := getSeries(t, s, url)
	_, b := getSeries(t, s, url)
	if a.Body.String() != b.Body.String() {
		t.Fatal("hit bytes differ from miss bytes")
	}
	if s.cacheHits.Value() != 1 || s.cacheMisses.Value() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", s.cacheHits.Value(), s.cacheMisses.Value())
	}
}

func TestOutagesEndpoint(t *testing.T) {
	st := NewStore(testTimeline())
	det := func(es *signals.EntitySeries) *signals.Detection {
		return &signals.Detection{
			Flags: make([]signals.Kind, len(es.BGP)),
			Outages: []signals.Outage{
				{Start: 3, End: 7, Signals: signals.SignalBGP | signals.SignalIPS},
				{Start: 12, End: 20, Signals: signals.SignalFBS, Ongoing: true},
			},
		}
	}
	if _, err := st.Register("asn", "1", patternSource{0}, det); err != nil {
		t.Fatal(err)
	}
	if err := st.AdvanceTo(30); err != nil {
		t.Fatal(err)
	}
	s := NewServer(st)
	rec := get(t, s, "/v1/outages?entity=asn/1")
	if rec.Code != http.StatusOK {
		t.Fatalf("outages = %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Entity    string `json:"entity"`
		Watermark int    `json:"watermark"`
		Outages   []struct {
			StartRound int    `json:"start_round"`
			EndRound   int    `json:"end_round"`
			Start      int64  `json:"start"`
			End        int64  `json:"end"`
			Signals    string `json:"signals"`
			Ongoing    bool   `json:"ongoing"`
		} `json:"outages"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad outages JSON: %v\n%s", err, rec.Body.String())
	}
	if out.Watermark != 30 || len(out.Outages) != 2 {
		t.Fatalf("outages payload wrong: %+v", out)
	}
	o := out.Outages[0]
	tl := st.Timeline()
	if o.StartRound != 3 || o.EndRound != 7 || o.Signals != "bgp+ips" || o.Ongoing {
		t.Fatalf("first outage wrong: %+v", o)
	}
	if o.Start != tl.Time(3).Unix() || o.End != tl.Time(6).Add(tl.Interval()).Unix() {
		t.Fatalf("outage times wrong: %+v", o)
	}
	if !out.Outages[1].Ongoing || out.Outages[1].Signals != "fbs" {
		t.Fatalf("second outage wrong: %+v", out.Outages[1])
	}
}

func TestEntitiesEndpoint(t *testing.T) {
	s, _ := newTestServer(t, 5)
	rec := get(t, s, "/v1/entities")
	var out struct {
		Watermark int `json:"watermark"`
		Count     int `json:"count"`
		Entities  []struct{ Key, Type, Code string }
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 2 || out.Watermark != 5 {
		t.Fatalf("entities payload wrong: %+v", out)
	}
	rec = get(t, s, "/v1/entities?type=region")
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 1 || out.Entities[0].Key != "region/Kherson" {
		t.Fatalf("type filter wrong: %+v", out)
	}
}

// reusableWriter is an http.ResponseWriter that retains its header map's
// buckets across requests: the production server reuses connections the
// same way, and the allocation test must measure the handler, not map
// growth on a fresh writer.
type reusableWriter struct {
	h      http.Header
	status int
	n      int
}

func (w *reusableWriter) Header() http.Header         { return w.h }
func (w *reusableWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }
func (w *reusableWriter) WriteHeader(code int)        { w.status = code }
func (w *reusableWriter) reset() {
	clear(w.h)
	w.status, w.n = 0, 0
}

// TestCachedQueryZeroAlloc is the ISSUE's hard acceptance criterion: after
// the first (rendering) request, serving the same query allocates nothing.
func TestCachedQueryZeroAlloc(t *testing.T) {
	s, _ := newTestServer(t, 40)
	s.Observe(obs.NewRegistry(), obs.NewBus(16))
	req := httptest.NewRequest("GET", "/v1/series?entity=asn/6877&limit=20", nil)
	w := &reusableWriter{h: make(http.Header)}
	s.handleSeries(w, req) // warm the cache
	if w.status == http.StatusNotFound || w.n == 0 {
		t.Fatalf("warmup failed: status %d, %d bytes", w.status, w.n)
	}
	allocs := testing.AllocsPerRun(200, func() {
		w.reset()
		s.handleSeries(w, req)
	})
	if allocs != 0 {
		t.Fatalf("cached query allocates %.1f objects/op, want 0", allocs)
	}
}
