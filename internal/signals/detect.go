package signals

import "time"

// Kind is a bitmask of the signals flagging an outage.
type Kind uint8

// Signal bits.
const (
	SignalBGP Kind = 1 << iota
	SignalFBS
	SignalIPS
)

// Has reports whether the mask contains the given signal.
func (k Kind) Has(s Kind) bool { return k&s != 0 }

func (k Kind) String() string {
	s := ""
	if k.Has(SignalBGP) {
		s += "BGP★"
	}
	if k.Has(SignalFBS) {
		if s != "" {
			s += "+"
		}
		s += "FBS■"
	}
	if k.Has(SignalIPS) {
		if s != "" {
			s += "+"
		}
		s += "IPS▲"
	}
	if s == "" {
		return "none"
	}
	return s
}

// Config holds the detection thresholds relative to the seven-day moving
// average (Table 2). A signal flags an outage when value < Frac × MA.
type Config struct {
	BGPFrac float64
	FBSFrac float64
	IPSFrac float64
	// FBSRequiresIPSBelow implements Table 2's "(if IPS < 95%)": the FBS
	// signal only fires when the IPS value is also below this fraction of
	// its moving average. Zero disables the coupling.
	FBSRequiresIPSBelow float64
	// AvailabilitySensing enables the Baltra-style filter: an FBS drop
	// accompanied by stable responsive-IP counts is dynamic address
	// reallocation, not an outage.
	AvailabilitySensing bool
	// MinBaseline suppresses detection when the moving average is below
	// this (too few entities for a meaningful ratio).
	MinBaseline float64
	// WindowRounds overrides the moving-average span (0 = seven days).
	WindowRounds int
}

// ASConfig returns the AS-level thresholds of Table 2.
func ASConfig() Config {
	return Config{
		BGPFrac: 0.95, FBSFrac: 0.80, IPSFrac: 0.80,
		FBSRequiresIPSBelow: 0.95, AvailabilitySensing: true,
		MinBaseline: 0.5,
	}
}

// RegionConfig returns the region-level thresholds of Table 2.
func RegionConfig() Config {
	return Config{
		BGPFrac: 0.95, FBSFrac: 0.95, IPSFrac: 0.90,
		FBSRequiresIPSBelow: 0.95, AvailabilitySensing: true,
		MinBaseline: 2,
	}
}

// Outage is a detected disruption: a maximal run of rounds in which at
// least one signal fired (missing rounds do not interrupt a run).
type Outage struct {
	// Start and End are round indices; the outage covers [Start, End).
	Start, End int
	// Signals is the union of signals that fired during the outage.
	Signals Kind
	// Ongoing marks outages extended by the zero-BGP flag: with no routed
	// /24 at all, the outage is considered to continue even after the
	// moving average has adapted to the new baseline (§3.1).
	Ongoing bool
}

// Duration returns the outage length given the probing interval.
func (o Outage) Duration(interval time.Duration) time.Duration {
	return time.Duration(o.End-o.Start) * interval
}

// Detection is the per-round and per-event outcome for one entity.
type Detection struct {
	// Flags[r] is the signal mask at round r.
	Flags []Kind
	// Outages are the merged events.
	Outages []Outage
}

// TotalRounds returns the number of rounds with any signal firing.
func (d *Detection) TotalRounds() int {
	n := 0
	for _, f := range d.Flags {
		if f != 0 {
			n++
		}
	}
	return n
}

// CountBySignal returns per-signal outage-event counts (an event counts for
// every signal that participated).
func (d *Detection) CountBySignal() map[Kind]int {
	out := make(map[Kind]int, 3)
	for _, o := range d.Outages {
		for _, s := range []Kind{SignalBGP, SignalFBS, SignalIPS} {
			if o.Signals.Has(s) {
				out[s]++
			}
		}
	}
	return out
}

// MovingAverage computes the mean of the previous window's non-missing
// values (excluding the current round) — the signals' seven-day baseline.
// It returns ok=false when fewer than a quarter of the window was measured.
func MovingAverage(vals []float32, missing []bool, r, window int) (float64, bool) {
	return movingAverage(vals, missing, r, window)
}

// movingAverage computes the mean of the previous window's non-missing
// values (excluding the current round). It returns ok=false when fewer than
// a quarter of the window was measured.
func movingAverage(vals []float32, missing []bool, r, window int) (float64, bool) {
	lo := r - window
	if lo < 0 {
		lo = 0
	}
	sum, n := 0.0, 0
	for i := lo; i < r; i++ {
		if missing[i] {
			continue
		}
		sum += float64(vals[i])
		n++
	}
	if n == 0 || n*4 < window {
		return 0, false
	}
	return sum / float64(n), true
}

// Detect runs outage detection for one entity series.
func Detect(es *EntitySeries, cfg Config) *Detection {
	rounds := len(es.BGP)
	window := cfg.WindowRounds
	if window <= 0 {
		window = es.TL.RoundsPerWeek()
	}
	d := &Detection{Flags: make([]Kind, rounds)}

	ongoingZeroBGP := false
	for r := 0; r < rounds; r++ {
		if es.Missing[r] {
			continue
		}
		var flags Kind

		maBGP, okBGP := movingAverage(es.BGP, es.Missing, r, window)
		maFBS, okFBS := movingAverage(es.FBS, es.Missing, r, window)
		maIPS, okIPS := movingAverage(es.IPS, es.Missing, r, window)

		ipsBelow := func(frac float64) bool {
			return okIPS && maIPS >= cfg.MinBaseline && float64(es.IPS[r]) < frac*maIPS
		}

		if okBGP && maBGP >= cfg.MinBaseline && float64(es.BGP[r]) < cfg.BGPFrac*maBGP {
			flags |= SignalBGP
		}
		if okFBS && maFBS >= cfg.MinBaseline && float64(es.FBS[r]) < cfg.FBSFrac*maFBS {
			fires := true
			if cfg.FBSRequiresIPSBelow > 0 && !ipsBelow(cfg.FBSRequiresIPSBelow) {
				fires = false
			}
			if cfg.AvailabilitySensing && okIPS && maIPS > 0 &&
				float64(es.IPS[r]) >= 0.98*maIPS {
				// Blocks vanished but addresses kept answering elsewhere in
				// the entity: dynamic reallocation, not an outage.
				fires = false
			}
			if fires {
				flags |= SignalFBS
			}
		}
		if es.IPSValid(r) && ipsBelow(cfg.IPSFrac) {
			flags |= SignalIPS
		}

		// Zero-BGP ongoing flag: once everything is withdrawn, the outage
		// persists until routes return, regardless of the moving average.
		hadBGP := okBGP && maBGP >= cfg.MinBaseline
		if es.BGP[r] == 0 && (hadBGP || ongoingZeroBGP) {
			if flags == 0 {
				flags |= SignalBGP
			}
			ongoingZeroBGP = true
		} else if es.BGP[r] > 0 {
			ongoingZeroBGP = false
		}
		d.Flags[r] = flags
	}

	// Merge consecutive flagged rounds (missing rounds bridge a run).
	inOutage := false
	var cur Outage
	flush := func(end int) {
		if inOutage {
			cur.End = end
			d.Outages = append(d.Outages, cur)
			inOutage = false
		}
	}
	for r := 0; r < rounds; r++ {
		if es.Missing[r] {
			continue
		}
		if d.Flags[r] != 0 {
			if !inOutage {
				cur = Outage{Start: r}
				inOutage = true
			}
			cur.Signals |= d.Flags[r]
			if es.BGP[r] == 0 {
				cur.Ongoing = true
			}
			cur.End = r + 1
		} else if inOutage {
			flush(cur.End)
		}
	}
	flush(cur.End)
	return d
}
