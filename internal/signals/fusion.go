package signals

import "countrymon/internal/obs"

// Vantage fusion: k-of-n corroboration of per-block darkness.
//
// A single sick vantage — stalled receive path, silent drops, a blackout
// that slipped past the error budget — looks exactly like the target going
// dark. Before a block's per-round observation is allowed to transition to
// down, the fleet supervisor gathers one verdict per vantage (the primary
// scan's per-vantage sample plus full-block corroboration re-probes) and
// FuseBlock requires coverage-weighted agreement from k distinct vantages.
// This is Trinocular-style belief maintenance: with any vantage seeing the
// block alive the observation is overridden to the best evidence; with
// insufficient dark quorum the previous belief is held.

// VantageVerdict is one vantage's evidence about a block in one round.
type VantageVerdict struct {
	// Vantage identifies the observing vantage; verdicts are deduplicated
	// per vantage (a full-block verdict supersedes a sample verdict).
	Vantage string
	// Resp is how many of the block's addresses answered this vantage.
	Resp int
	// Weight is the evidence weight in (0, 1]: the observing scan's
	// coverage, so a salvaged sliver of a scan cannot carry a full vote.
	Weight float64
	// Full marks a full-block observation (a corroboration re-probe that
	// walked all 256 addresses) as opposed to the primary scan's
	// one-shard-stratum sample.
	Full bool
}

// FuseOutcome is FuseBlock's decision for one suspect block.
type FuseOutcome uint8

const (
	// FuseAlive: at least one vantage saw the block answer — the dark
	// reading was vantage-side. Resp is restored from the best evidence.
	FuseAlive FuseOutcome = iota
	// FuseDown: a dark verdict reached the coverage-weighted quorum; the
	// block's transition to down is corroborated.
	FuseDown
	// FuseHeld: neither alive evidence nor dark quorum — the previous
	// belief is carried forward until more vantages can weigh in.
	FuseHeld
)

var fuseNames = [...]string{"alive", "down", "held"}

func (o FuseOutcome) String() string {
	if int(o) < len(fuseNames) {
		return fuseNames[o]
	}
	return "unknown"
}

// FuseBlock fuses one suspect block's verdicts into a per-round response
// count. prev is the block's last believed count (> 0, or the block would
// not be a suspect), merged the depressed count the primary scans produced,
// and quorum the configured k of k-of-n. Verdicts are deduplicated by
// vantage — a Full verdict supersedes a sample — and the effective quorum
// is min(quorum, distinct vantages), so a degraded single-vantage fleet
// still converges instead of holding forever.
func FuseBlock(prev, merged int, verdicts []VantageVerdict, quorum int) (resp int, outcome FuseOutcome) {
	if quorum < 1 {
		quorum = 1
	}
	// Deduplicate by vantage, preferring full-block evidence.
	byVantage := make(map[string]VantageVerdict, len(verdicts))
	order := make([]string, 0, len(verdicts))
	for _, v := range verdicts {
		cur, ok := byVantage[v.Vantage]
		if !ok {
			order = append(order, v.Vantage)
			byVantage[v.Vantage] = v
			continue
		}
		if v.Full && !cur.Full || v.Full == cur.Full && v.Weight > cur.Weight {
			byVantage[v.Vantage] = v
		}
	}
	alive, darkWeight := 0, 0.0
	for _, name := range order {
		v := byVantage[name]
		if v.Resp > 0 {
			if v.Full && v.Resp > alive {
				alive = v.Resp
			} else if alive == 0 {
				alive = 1 // sample evidence: alive, but the count is partial
			}
		} else {
			darkWeight += v.Weight
		}
	}
	switch {
	case alive > 0:
		// Full-block evidence restores the true count; with only sample
		// evidence keep the (depressed) merged count — it is still the best
		// whole-block estimate we have.
		resp = merged
		if alive > resp {
			resp = alive
		}
		return resp, FuseAlive
	case darkWeight >= float64(min(quorum, len(order)))-1e-9 && len(order) > 0:
		return 0, FuseDown
	default:
		return prev, FuseHeld
	}
}

// FusionMetrics counts fusion decisions, children of
// signals_fusion_total{outcome}. Build with NewFusionMetrics; on a nil
// registry every instrument is nil and inert.
type FusionMetrics struct {
	Alive *obs.Counter
	Down  *obs.Counter
	Held  *obs.Counter
}

// NewFusionMetrics registers (idempotently) the fusion instruments on reg.
func NewFusionMetrics(reg *obs.Registry) *FusionMetrics {
	fused := reg.CounterVec("signals_fusion_total",
		"Suspect-block fusion decisions by outcome.", "outcome")
	return &FusionMetrics{
		Alive: fused.With("alive"),
		Down:  fused.With("down"),
		Held:  fused.With("held"),
	}
}

// Observe records one fusion decision.
func (m *FusionMetrics) Observe(o FuseOutcome) {
	if m == nil {
		return
	}
	switch o {
	case FuseAlive:
		m.Alive.Inc()
	case FuseDown:
		m.Down.Inc()
	case FuseHeld:
		m.Held.Inc()
	}
}
