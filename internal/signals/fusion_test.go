package signals

import (
	"strings"
	"testing"

	"countrymon/internal/obs"
)

func v(name string, resp int, weight float64, full bool) VantageVerdict {
	return VantageVerdict{Vantage: name, Resp: resp, Weight: weight, Full: full}
}

func TestFuseBlock(t *testing.T) {
	cases := []struct {
		name     string
		prev     int
		merged   int
		verdicts []VantageVerdict
		quorum   int
		wantResp int
		wantOut  FuseOutcome
	}{
		{
			name: "full alive evidence overrides a sick vantage's zeros",
			prev: 40, merged: 27,
			verdicts: []VantageVerdict{
				v("v0", 0, 1, false), // stalled: its stratum read all-dark
				v("v1", 40, 1, true), v("v2", 40, 1, true),
			},
			quorum: 2, wantResp: 40, wantOut: FuseAlive,
		},
		{
			name: "sample-only alive evidence keeps the merged count",
			prev: 40, merged: 27,
			verdicts: []VantageVerdict{
				v("v0", 0, 1, false), v("v1", 13, 1, false), v("v2", 14, 1, false),
			},
			quorum: 2, wantResp: 27, wantOut: FuseAlive,
		},
		{
			name: "unanimous dark reaches quorum",
			prev: 40, merged: 0,
			verdicts: []VantageVerdict{
				v("v0", 0, 1, true), v("v1", 0, 1, true), v("v2", 0, 1, true),
			},
			quorum: 2, wantResp: 0, wantOut: FuseDown,
		},
		{
			name: "low-coverage dark votes fall short and hold the belief",
			prev: 40, merged: 0,
			verdicts: []VantageVerdict{
				v("v0", 0, 0.5, true), v("v1", 0, 0.6, true), v("v2", 0, 0.5, true),
			},
			quorum: 2, wantResp: 40, wantOut: FuseHeld,
		},
		{
			name: "single healthy vantage: effective quorum shrinks to 1",
			prev: 40, merged: 0,
			verdicts: []VantageVerdict{v("v0", 0, 1, true)},
			quorum:   2, wantResp: 0, wantOut: FuseDown,
		},
		{
			name: "full verdict supersedes the same vantage's dark sample",
			prev: 40, merged: 0,
			verdicts: []VantageVerdict{
				v("v0", 0, 1, false), v("v0", 40, 1, true), v("v1", 0, 1, true),
			},
			quorum: 2, wantResp: 40, wantOut: FuseAlive,
		},
		{
			name: "no verdicts at all holds the belief",
			prev: 40, merged: 0, verdicts: nil,
			quorum: 2, wantResp: 40, wantOut: FuseHeld,
		},
		{
			name: "alive never exceeds truth: merged beats a lossy re-probe",
			prev: 40, merged: 38,
			verdicts: []VantageVerdict{v("v0", 35, 1, true), v("v1", 0, 1, true)},
			quorum:   2, wantResp: 38, wantOut: FuseAlive,
		},
		{
			name: "dark weight exactly at quorum transitions down",
			prev: 40, merged: 0,
			verdicts: []VantageVerdict{v("v0", 0, 1, true), v("v1", 0, 1, true)},
			quorum:   2, wantResp: 0, wantOut: FuseDown,
		},
		{
			name: "dark weight a hair under quorum holds",
			prev: 40, merged: 0,
			verdicts: []VantageVerdict{v("v0", 0, 1, true), v("v1", 0, 0.999, true)},
			quorum:   2, wantResp: 40, wantOut: FuseHeld,
		},
		{
			name: "all-stalled fleet: dark verdicts with zero weight hold",
			prev: 40, merged: 0,
			verdicts: []VantageVerdict{
				v("v0", 0, 0, false), v("v1", 0, 0, false), v("v2", 0, 0, false),
			},
			quorum: 2, wantResp: 40, wantOut: FuseHeld,
		},
		{
			name: "two vantages under quorum 3: effective quorum shrinks to 2",
			prev: 40, merged: 0,
			verdicts: []VantageVerdict{v("v0", 0, 1, true), v("v1", 0, 1, true)},
			quorum:   3, wantResp: 0, wantOut: FuseDown,
		},
		{
			name: "dedup weight tie keeps the first verdict: dark sample first",
			prev: 40, merged: 25,
			verdicts: []VantageVerdict{v("v0", 0, 0.8, false), v("v0", 30, 0.8, false)},
			quorum:   2, wantResp: 40, wantOut: FuseHeld,
		},
		{
			name: "dedup weight tie keeps the first verdict: alive sample first",
			prev: 40, merged: 25,
			verdicts: []VantageVerdict{v("v0", 30, 0.8, false), v("v0", 0, 0.8, false)},
			quorum:   2, wantResp: 25, wantOut: FuseAlive,
		},
		{
			name: "higher-weight sample supersedes the same vantage's sliver",
			prev: 40, merged: 0,
			verdicts: []VantageVerdict{
				v("v0", 3, 0.1, false), v("v0", 0, 1, false), v("v1", 0, 1, true),
			},
			quorum: 2, wantResp: 0, wantOut: FuseDown,
		},
		{
			name: "quorum zero is normalized to 1",
			prev: 40, merged: 0,
			verdicts: []VantageVerdict{v("v0", 0, 1, true)},
			quorum:   0, wantResp: 0, wantOut: FuseDown,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, out := FuseBlock(tc.prev, tc.merged, tc.verdicts, tc.quorum)
			if resp != tc.wantResp || out != tc.wantOut {
				t.Fatalf("FuseBlock = (%d, %v), want (%d, %v)", resp, out, tc.wantResp, tc.wantOut)
			}
		})
	}
}

func TestFusionMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewFusionMetrics(reg)
	m.Observe(FuseAlive)
	m.Observe(FuseAlive)
	m.Observe(FuseDown)
	m.Observe(FuseHeld)
	var b strings.Builder
	reg.WritePrometheus(&b)
	for _, want := range []string{
		`signals_fusion_total{outcome="alive"} 2`,
		`signals_fusion_total{outcome="down"} 1`,
		`signals_fusion_total{outcome="held"} 1`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q in\n%s", want, b.String())
		}
	}
	// Nil metrics are inert.
	var nilM *FusionMetrics
	nilM.Observe(FuseDown)
	if FuseDown.String() != "down" || FuseAlive.String() != "alive" || FuseHeld.String() != "held" {
		t.Error("FuseOutcome names wrong")
	}
}
