package signals

import (
	"math/rand"
	"testing"
)

// Property-based invariants of outage detection: for arbitrary signal
// series, the detection must produce sorted, non-overlapping outages whose
// flagged rounds exactly match the per-round flag array, and never flag
// missing rounds.

func randomSeries(rng *rand.Rand, rounds int) *EntitySeries {
	es := syntheticSeries(rounds, 0, 0, 0)
	baseBGP := float32(rng.Intn(30) + 2)
	baseFBS := float32(rng.Intn(25) + 2)
	baseIPS := float32(rng.Intn(900) + 50)
	for r := 0; r < rounds; r++ {
		es.BGP[r] = baseBGP
		es.FBS[r] = baseFBS
		es.IPS[r] = baseIPS
		if rng.Intn(10) == 0 {
			es.Missing[r] = true
		}
	}
	// Random dips.
	nDips := rng.Intn(6)
	for i := 0; i < nDips; i++ {
		start := rng.Intn(rounds)
		length := 1 + rng.Intn(40)
		depth := float32(rng.Float64())
		for r := start; r < start+length && r < rounds; r++ {
			switch rng.Intn(3) {
			case 0:
				es.BGP[r] *= depth
			case 1:
				es.FBS[r] *= depth
			default:
				es.IPS[r] *= depth
			}
		}
	}
	for m := range es.IPSValidMonth {
		es.IPSValidMonth[m] = true
	}
	return es
}

func TestDetectionInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		es := randomSeries(rng, 500)
		for _, cfg := range []Config{ASConfig(), RegionConfig()} {
			d := Detect(es, cfg)

			// Outages sorted, non-overlapping, non-empty, in range.
			for i, o := range d.Outages {
				if o.Start >= o.End {
					t.Fatalf("trial %d: empty outage %+v", trial, o)
				}
				if o.Start < 0 || o.End > 500 {
					t.Fatalf("trial %d: out-of-range outage %+v", trial, o)
				}
				if o.Signals == 0 {
					t.Fatalf("trial %d: outage without signals", trial)
				}
				if i > 0 && o.Start < d.Outages[i-1].End {
					t.Fatalf("trial %d: overlapping outages", trial)
				}
			}

			// Flags on missing rounds are forbidden.
			for r, f := range d.Flags {
				if f != 0 && es.Missing[r] {
					t.Fatalf("trial %d: flag on missing round %d", trial, r)
				}
			}

			// Every flagged round lies inside some outage, and every
			// outage contains at least one flagged round.
			inOutage := make([]bool, 500)
			for _, o := range d.Outages {
				found := false
				for r := o.Start; r < o.End; r++ {
					inOutage[r] = true
					if d.Flags[r] != 0 {
						found = true
					}
				}
				if !found {
					t.Fatalf("trial %d: outage [%d,%d) without flagged rounds", trial, o.Start, o.End)
				}
			}
			for r, f := range d.Flags {
				if f != 0 && !inOutage[r] {
					t.Fatalf("trial %d: flagged round %d outside all outages", trial, r)
				}
			}

			// TotalRounds consistency.
			n := 0
			for _, f := range d.Flags {
				if f != 0 {
					n++
				}
			}
			if n != d.TotalRounds() {
				t.Fatalf("trial %d: TotalRounds mismatch", trial)
			}
		}
	}
}

func TestDetectionMonotoneInThreshold(t *testing.T) {
	// Stricter thresholds (lower Frac) must never flag more rounds.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		es := randomSeries(rng, 400)
		prev := -1
		for _, frac := range []float64{0.5, 0.7, 0.9, 0.99} {
			cfg := Config{BGPFrac: frac, FBSFrac: frac, IPSFrac: frac, MinBaseline: 0.5}
			d := Detect(es, cfg)
			n := d.TotalRounds()
			if prev >= 0 && n < prev {
				t.Fatalf("trial %d: flagged rounds decreased as threshold relaxed (%d -> %d at %.2f)",
					trial, prev, n, frac)
			}
			prev = n
		}
	}
}
