package signals

import (
	"time"

	"countrymon/internal/obs"
)

// Metrics holds the analysis-side instruments: series-construction and
// detection timings plus detected outages by signal kind. Build with
// NewMetrics; on a nil registry every instrument is nil and inert.
type Metrics struct {
	BuildSeconds  *obs.Histogram // signals_series_build_seconds
	FoldSeconds   *obs.Histogram // signals_fold_seconds
	DetectSeconds *obs.Histogram // signals_detect_seconds

	// Outage events by participating signal, children of
	// signals_outages_total{signal}. An event counts once per signal that
	// fired during it, matching Detection.CountBySignal.
	OutagesBGP *obs.Counter
	OutagesFBS *obs.Counter
	OutagesIPS *obs.Counter
}

// NewMetrics registers (idempotently) the signal instruments on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	outages := reg.CounterVec("signals_outages_total",
		"Detected outage events by participating signal.", "signal")
	return &Metrics{
		BuildSeconds: reg.Histogram("signals_series_build_seconds",
			"Time to build one entity's AS or region series.", 0),
		FoldSeconds: reg.Histogram("signals_fold_seconds",
			"Time to fold one round into all warm streaming series.", 0),
		DetectSeconds: reg.Histogram("signals_detect_seconds",
			"Time to run outage detection over one entity series.", 0),
		OutagesBGP: outages.With("bgp"),
		OutagesFBS: outages.With("fbs"),
		OutagesIPS: outages.With("ips"),
	}
}

// Observe attaches m to the builder: subsequent (non-memoized) series builds
// record their construction time. A nil m detaches.
func (b *Builder) Observe(m *Metrics) {
	if m == nil {
		m = &Metrics{}
	}
	b.metrics = m
}

// DetectObs is Detect plus instrumentation: detection timing and per-signal
// outage counts land on m (nil m is allowed and records nothing).
func DetectObs(es *EntitySeries, cfg Config, m *Metrics) *Detection {
	if m == nil {
		m = &Metrics{}
	}
	t0 := time.Now()
	d := Detect(es, cfg)
	m.DetectSeconds.ObserveSince(t0)
	for _, o := range d.Outages {
		if o.Signals.Has(SignalBGP) {
			m.OutagesBGP.Inc()
		}
		if o.Signals.Has(SignalFBS) {
			m.OutagesFBS.Inc()
		}
		if o.Signals.Has(SignalIPS) {
			m.OutagesIPS.Inc()
		}
	}
	return d
}
