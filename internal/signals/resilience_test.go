package signals

import (
	"testing"
	"time"

	"countrymon/internal/dataset"
	"countrymon/internal/netmodel"
	"countrymon/internal/timeline"
)

// steadyStore builds a 4-block, 400-round store with constant responsiveness
// (8 IPs per block, all routed) and the matching one-AS space — a flat
// baseline on which individual rounds can be perturbed.
func steadyStore(t *testing.T) (*dataset.Store, *netmodel.Space) {
	t.Helper()
	space := netmodel.MustBuildSpace([]*netmodel.AS{{
		ASN: 64500, Name: "Steady",
		Prefixes: []netmodel.Prefix{netmodel.MustParsePrefix("10.0.0.0/22")},
	}})
	start := time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)
	tl := timeline.New(start, start.Add(399*2*time.Hour), 2*time.Hour)
	s := dataset.NewStore(tl, space.Blocks())
	for bi := 0; bi < s.NumBlocks(); bi++ {
		for r := 0; r < tl.NumRounds(); r++ {
			s.SetRound(bi, r, 8, true)
		}
	}
	return s, space
}

func TestMovingAverageSkipsMissing(t *testing.T) {
	vals := make([]float32, 100)
	missing := make([]bool, 100)
	for i := range vals {
		vals[i] = 10
	}
	// Corrupt some window rounds but mark them missing: the baseline must
	// not see them.
	for i := 50; i < 60; i++ {
		vals[i], missing[i] = 0, true
	}
	ma, ok := MovingAverage(vals, missing, 70, 40)
	if !ok || ma != 10 {
		t.Errorf("MA = %v ok=%v, want 10 excluding missing rounds", ma, ok)
	}
	// Fewer than a quarter of the window measured → no baseline.
	for i := 5; i < 40; i++ {
		missing[i] = true
	}
	if _, ok := MovingAverage(vals, missing, 41, 40); ok {
		t.Error("MA ok with <1/4 of the window measured")
	}
}

func TestDetectionQuietAcrossVantageOutage(t *testing.T) {
	s, space := steadyStore(t)
	// A 40-round (~3.3 day) vantage outage mid-campaign.
	for r := 100; r < 140; r++ {
		s.SetMissing(r)
	}
	es := NewBuilder(s, space).AS(64500)
	for _, r := range []int{100, 139} {
		if !es.Missing[r] {
			t.Fatalf("round %d not marked missing in series", r)
		}
	}
	d := Detect(es, ASConfig())
	if len(d.Outages) != 0 {
		t.Errorf("vantage outage fabricated %d outage(s): %+v", len(d.Outages), d.Outages)
	}
	// The first measured round after the gap still has a baseline: the
	// seven-day MA skips missing rounds rather than dividing by them.
	window := es.TL.RoundsPerWeek()
	ma, ok := MovingAverage(es.BGP, es.Missing, 140, window)
	if !ok || ma != 4 {
		t.Errorf("post-gap BGP MA = %v ok=%v, want 4", ma, ok)
	}
}

func TestOngoingOutageBridgesMissingRounds(t *testing.T) {
	es := syntheticSeries(400, 10, 8, 500)
	// Total BGP withdrawal for 60 rounds, with a vantage outage in the
	// middle of it.
	for r := 200; r < 260; r++ {
		es.BGP[r], es.FBS[r], es.IPS[r] = 0, 0, 0
	}
	for r := 220; r < 240; r++ {
		es.Missing[r] = true
	}
	d := Detect(es, ASConfig())
	if len(d.Outages) != 1 {
		t.Fatalf("outages = %d, want 1 bridged event: %+v", len(d.Outages), d.Outages)
	}
	o := d.Outages[0]
	if o.Start != 200 || o.End != 260 {
		t.Errorf("outage [%d,%d), want [200,260)", o.Start, o.End)
	}
	if !o.Ongoing {
		t.Error("zero-BGP outage must carry the ongoing flag")
	}
}

func TestPartialRoundGatedByCoverage(t *testing.T) {
	s, space := steadyStore(t)
	// Round 250 was salvaged at 30% coverage and its data looks like a
	// total collapse — an artifact of the aborted scan, not the network.
	for bi := 0; bi < s.NumBlocks(); bi++ {
		s.SetRound(bi, 250, 0, true)
	}
	s.SetCoverage(250, 0.3)

	// Default gate (80%): the sliver is treated like a vantage outage.
	es := NewBuilder(s, space).AS(64500)
	if !es.Missing[250] {
		t.Fatal("round at 30 percent coverage not gated at the default threshold")
	}
	if d := Detect(es, ASConfig()); len(d.Outages) != 0 {
		t.Errorf("gated partial round still fabricated outages: %+v", d.Outages)
	}

	// Gate disabled: the same data reads as a real collapse, which is
	// exactly what the gate exists to prevent.
	esRaw := NewBuilderMinCoverage(s, space, 0).AS(64500)
	if esRaw.Missing[250] {
		t.Fatal("ungated builder still hides the round")
	}
	d := Detect(esRaw, ASConfig())
	if len(d.Outages) != 1 || d.Outages[0].Start != 250 {
		t.Fatalf("ungated partial round should read as an outage: %+v", d.Outages)
	}
}
