// Package signals implements the paper's second core contribution (§3.1,
// §5): the three Internet-availability signals —
//
//	BGP★  routed /24 address blocks,
//	FBS■  active /24 blocks among those meeting the full-block-scan
//	      eligibility E(b) ≥ 3 ever-active addresses per month,
//	IPS▲  responsive IP addresses (gated on months averaging > 10),
//
// computed per AS and per region, plus outage detection against a seven-day
// moving average with the static thresholds of Table 2, the "ongoing" flag
// for total BGP loss, and ISP availability sensing (Baltra & Heidemann) to
// filter dynamic-reallocation false positives out of the FBS signal.
//
// Two builder modes share one implementation: the batch mode derives series
// from a complete store (the oracle every test compares against), and the
// streaming mode (NewStreamingBuilder, Fold) keeps already-built series warm
// across a running campaign, folding each new round in as it lands at
// O(blocks touched this round) instead of rebuilding the full campaign.
package signals

import (
	"sync"
	"time"

	"countrymon/internal/dataset"
	"countrymon/internal/netmodel"
	"countrymon/internal/par"
	"countrymon/internal/regional"
	"countrymon/internal/timeline"
)

// MinEverActive is the FBS block-eligibility threshold (E(b) ≥ 3).
const MinEverActive = 3

// MinIPSMonthly gates the IPS signal: it is only evaluated in months whose
// mean responsive-IP count exceeds this (§3.1).
const MinIPSMonthly = 10.0

// DefaultMinCoverage is the probed-target fraction below which a salvaged
// partial round is treated like a vantage outage. A round that only probed a
// sliver of its targets would otherwise read as a fabricated IPS/FBS
// collapse.
const DefaultMinCoverage = 0.8

// EntitySeries holds one entity's (AS or region) per-round signal values.
type EntitySeries struct {
	Name string
	TL   *timeline.Timeline
	// BGP, FBS and IPS are per-round values (see package doc).
	BGP []float32
	FBS []float32
	IPS []float32
	// IPSValidMonth marks months where the IPS signal is evaluated.
	IPSValidMonth []bool
	// Missing marks rounds without usable data: vantage outages plus
	// partial rounds below the builder's coverage gate.
	Missing []bool
}

// IPSValid reports whether the IPS signal is evaluated at round r.
func (e *EntitySeries) IPSValid(r int) bool {
	return e.IPSValidMonth[e.TL.MonthOfRound(r)]
}

// Builder derives entity series from the measurement store.
type Builder struct {
	store *dataset.Store
	space *netmodel.Space
	tl    *timeline.Timeline
	// months caches tl.NumMonths(): the stride of the flattened per-block ×
	// per-month arrays below.
	months int
	// monthOf caches the dense month index of every round.
	monthOf []int32
	// everMax[bi*months+m] is the partial E(b) aggregate: the maximum
	// per-round responsive count of block bi seen in month m so far (over
	// non-missing rounds). The streaming mode maintains it as rounds fold in.
	everMax []uint8
	// elig[bi*months+m] is FBS eligibility of block bi in month m — exactly
	// everMax ≥ MinEverActive, kept materialized because it sits on the
	// series-accumulation hot path.
	elig []bool
	// asBlocks maps each AS to its dense block indices in the store.
	asBlocks map[netmodel.ASN][]int
	// missing is the effective no-data mask: vantage outages plus partial
	// rounds below the coverage gate. Every derived series aliases it, so a
	// streaming fold updates all of them at once.
	missing []bool
	// minCoverage is the partial-round gate the mask was computed with.
	minCoverage float64
	// asCache and regionCache memoize built series. Callers treat returned
	// series as shared and read-only; anything derived from them (detection,
	// ablations) allocates its own buffers.
	asCache     par.Cache[netmodel.ASN, *EntitySeries]
	regionCache par.Cache[*regional.RegionResult, *EntitySeries]
	// metrics records series-build timings (see Observe); never nil.
	metrics *Metrics

	// Streaming state (see stream.go). foldMu guards the entity registry:
	// series builds may run concurrently with each other (par.Cache), but
	// Fold must not run concurrently with series queries — the campaign
	// goroutine serializes them.
	streaming bool
	nextFold  int
	foldMu    sync.Mutex
	entities  []*foldEntity
}

// NewBuilder precomputes eligibility for all blocks and months, gating
// partial rounds at DefaultMinCoverage.
func NewBuilder(store *dataset.Store, space *netmodel.Space) *Builder {
	return NewBuilderMinCoverage(store, space, DefaultMinCoverage)
}

// NewBuilderMinCoverage is NewBuilder with an explicit coverage gate:
// rounds that probed less than minCoverage of their targets count as
// missing for every derived series.
func NewBuilderMinCoverage(store *dataset.Store, space *netmodel.Space, minCoverage float64) *Builder {
	tl := store.Timeline()
	months := tl.NumMonths()
	rounds := tl.NumRounds()
	b := &Builder{
		store:       store,
		space:       space,
		tl:          tl,
		months:      months,
		monthOf:     make([]int32, rounds),
		everMax:     make([]uint8, store.NumBlocks()*months),
		elig:        make([]bool, store.NumBlocks()*months),
		asBlocks:    make(map[netmodel.ASN][]int),
		missing:     store.EffectiveMissing(minCoverage),
		minCoverage: minCoverage,
		metrics:     &Metrics{},
	}
	for r := 0; r < rounds; r++ {
		b.monthOf[r] = int32(tl.MonthOfRound(r))
	}
	// The ever-active aggregates are independent per block: one pass over
	// the block's round series per worker-pool shard. MonthStats skips only
	// true vantage outages (not coverage-gated partial rounds), so the
	// aggregation here must too.
	outage := store.MissingRounds()
	par.ForEach(store.NumBlocks(), func(bi int) {
		resp := store.RespSeries(bi)
		base := bi * months
		for r := 0; r < rounds; r++ {
			if outage[r] {
				continue
			}
			if c := resp[r]; c > b.everMax[base+int(b.monthOf[r])] {
				b.everMax[base+int(b.monthOf[r])] = c
			}
		}
		for m := 0; m < months; m++ {
			b.elig[base+m] = b.everMax[base+m] >= MinEverActive
		}
	})
	// Group blocks per AS sequentially so each AS's block list stays in
	// ascending index order: series accumulation order (and thus float
	// rounding) must not depend on the worker count.
	for bi := 0; bi < store.NumBlocks(); bi++ {
		blk := store.Blocks()[bi]
		if asn := space.OriginOf(blk); asn != 0 {
			b.asBlocks[asn] = append(b.asBlocks[asn], bi)
		}
	}
	return b
}

// Store returns the underlying measurement store.
func (b *Builder) Store() *dataset.Store { return b.store }

// Timeline returns the campaign timeline.
func (b *Builder) Timeline() *timeline.Timeline { return b.tl }

// Eligible reports FBS eligibility of block bi in month m.
func (b *Builder) Eligible(bi, m int) bool { return b.elig[bi*b.months+m] }

// ASBlocks returns the dense block indices of an AS.
func (b *Builder) ASBlocks(asn netmodel.ASN) []int { return b.asBlocks[asn] }

// AS builds the AS-wide series over all the AS's blocks (as §5.4 does for
// comparability with IODA). Results are memoized per AS and safe to request
// from concurrent goroutines; the returned series is shared — treat it as
// read-only.
func (b *Builder) AS(asn netmodel.ASN) *EntitySeries {
	return b.asCache.Get(asn, func() *EntitySeries { return b.buildAS(asn) })
}

func (b *Builder) buildAS(asn netmodel.ASN) *EntitySeries {
	defer b.metrics.BuildSeconds.ObserveSince(time.Now())
	es := b.newSeries(asn.String())
	rounds := b.tl.NumRounds()
	for _, bi := range b.asBlocks[asn] {
		resp := b.store.RespSeries(bi)
		base := bi * b.months
		for r := 0; r < rounds; r++ {
			if es.Missing[r] {
				continue
			}
			c := float32(resp[r])
			es.IPS[r] += c
			if b.store.Routed(bi, r) {
				es.BGP[r]++
			}
			if b.elig[base+int(b.monthOf[r])] && c > 0 {
				es.FBS[r]++
			}
		}
	}
	b.fillIPSValidity(es)
	b.registerFold(&foldEntity{es: es, blocks: b.asBlocks[asn]})
	return es
}

// Region builds the regional series: only blocks classified regional for
// the region contribute, only in the months they meet the share threshold,
// weighted by their regional share of addresses (§3.1 "Signal Properties").
// Results are memoized per classification result (keyed by the *RegionResult
// pointer) and safe to request from concurrent goroutines; the returned
// series is shared — treat it as read-only. The series is always accumulated
// in ascending block order by a single goroutine, so float rounding is
// identical regardless of the worker count.
func (b *Builder) Region(rr *regional.RegionResult, cl *regional.Classifier) *EntitySeries {
	return b.regionCache.Get(rr, func() *EntitySeries { return b.buildRegion(rr, cl) })
}

func (b *Builder) buildRegion(rr *regional.RegionResult, cl *regional.Classifier) *EntitySeries {
	defer b.metrics.BuildSeconds.ObserveSince(time.Now())
	es := b.newSeries(rr.Region.String())
	rounds := b.tl.NumRounds()
	fe := &foldEntity{es: es}
	for _, bc := range rr.Blocks {
		if !bc.Regional {
			continue
		}
		bi := bc.Index
		fe.blocks = append(fe.blocks, bi)
		fe.eval = append(fe.eval, bc.EvalMonths)
		resp := b.store.RespSeries(bi)
		base := bi * b.months
		for r := 0; r < rounds; r++ {
			if es.Missing[r] {
				continue
			}
			m := int(b.monthOf[r])
			if !bc.EvalMonths[m] {
				continue
			}
			share := float32(cl.BlockShare(bi, m, rr.Region))
			c := float32(resp[r]) * share
			es.IPS[r] += c
			if b.store.Routed(bi, r) {
				es.BGP[r]++
			}
			if b.elig[base+m] && resp[r] > 0 {
				es.FBS[r]++
			}
		}
	}
	region := rr.Region
	fe.share = func(bi, m int) float32 { return float32(cl.BlockShare(bi, m, region)) }
	b.fillIPSValidity(es)
	b.registerFold(fe)
	return es
}

func (b *Builder) newSeries(name string) *EntitySeries {
	rounds := b.tl.NumRounds()
	// One backing array for all three signals instead of three small
	// allocations; series construction dominates the sweep hot paths.
	buf := make([]float32, 3*rounds)
	return &EntitySeries{
		Name:          name,
		TL:            b.tl,
		BGP:           buf[:rounds:rounds],
		FBS:           buf[rounds : 2*rounds : 2*rounds],
		IPS:           buf[2*rounds:],
		IPSValidMonth: make([]bool, b.tl.NumMonths()),
		Missing:       b.missing,
	}
}

func (b *Builder) fillIPSValidity(es *EntitySeries) {
	for m := 0; m < b.tl.NumMonths(); m++ {
		b.fillIPSValidityMonth(es, m)
	}
}

// fillIPSValidityMonth recomputes the IPS validity of a single month — the
// unit of invalidation the streaming fold pays per round. The mean is always
// accumulated in ascending round order so batch and streaming builds agree
// bit for bit.
func (b *Builder) fillIPSValidityMonth(es *EntitySeries, m int) {
	lo, hi := b.tl.MonthRounds(m)
	sum, n := 0.0, 0
	for r := lo; r < hi; r++ {
		if es.Missing[r] {
			continue
		}
		sum += float64(es.IPS[r])
		n++
	}
	es.IPSValidMonth[m] = n > 0 && sum/float64(n) > MinIPSMonthly
}
