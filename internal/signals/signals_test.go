package signals

import (
	"sync"
	"testing"
	"time"

	"countrymon/internal/dataset"
	"countrymon/internal/netmodel"
	"countrymon/internal/regional"
	"countrymon/internal/sim"
	"countrymon/internal/timeline"
)

var (
	once sync.Once
	fSc  *sim.Scenario
	fSt  *dataset.Store
	fB   *Builder
	fCl  *regional.Classifier
	fRes *regional.Result
)

func fixture(t *testing.T) (*sim.Scenario, *Builder) {
	t.Helper()
	once.Do(func() {
		fSc = sim.MustBuild(sim.Config{Seed: 42, Scale: 0.05})
		fSt = fSc.GenerateStore(nil)
		fB = NewBuilder(fSt, fSc.Space)
		fCl = regional.NewClassifier(fSc.Space, fSc.GeoDB(), fSt)
		fRes = fCl.ClassifyAll(regional.DefaultParams())
	})
	return fSc, fB
}

// syntheticSeries builds an EntitySeries with constant baselines for
// manual manipulation.
func syntheticSeries(rounds int, bgp, fbs, ips float32) *EntitySeries {
	start := time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)
	tl := timeline.New(start, start.Add(time.Duration(rounds-1)*2*time.Hour), 2*time.Hour)
	es := &EntitySeries{
		Name: "synthetic", TL: tl,
		BGP:           make([]float32, rounds),
		FBS:           make([]float32, rounds),
		IPS:           make([]float32, rounds),
		IPSValidMonth: make([]bool, tl.NumMonths()),
		Missing:       make([]bool, rounds),
	}
	for r := 0; r < rounds; r++ {
		es.BGP[r], es.FBS[r], es.IPS[r] = bgp, fbs, ips
	}
	for m := range es.IPSValidMonth {
		es.IPSValidMonth[m] = ips > MinIPSMonthly
	}
	return es
}

func TestDetectSyntheticBGPOutage(t *testing.T) {
	es := syntheticSeries(400, 10, 8, 500)
	for r := 200; r < 212; r++ {
		es.BGP[r], es.FBS[r], es.IPS[r] = 0, 0, 0
	}
	d := Detect(es, ASConfig())
	if len(d.Outages) != 1 {
		t.Fatalf("outages = %d, want 1 (%+v)", len(d.Outages), d.Outages)
	}
	o := d.Outages[0]
	if o.Start != 200 || o.End != 212 {
		t.Errorf("outage [%d,%d), want [200,212)", o.Start, o.End)
	}
	if !o.Signals.Has(SignalBGP) || !o.Signals.Has(SignalIPS) {
		t.Errorf("signals = %v", o.Signals)
	}
	if got := o.Duration(2 * time.Hour); got != 24*time.Hour {
		t.Errorf("duration = %v", got)
	}
}

func TestDetectIPSOnlyPartialOutage(t *testing.T) {
	es := syntheticSeries(400, 10, 8, 500)
	for r := 150; r < 160; r++ {
		es.IPS[r] = 250 // half the IPs gone; blocks still active
	}
	d := Detect(es, ASConfig())
	if len(d.Outages) != 1 {
		t.Fatalf("outages = %d", len(d.Outages))
	}
	if d.Outages[0].Signals != SignalIPS {
		t.Errorf("signals = %v, want IPS only", d.Outages[0].Signals)
	}
}

func TestAvailabilitySensingFiltersReallocation(t *testing.T) {
	// Blocks disappear while responsive IPs stay stable: dynamic
	// reallocation must not be flagged (§3.1).
	mk := func() *EntitySeries {
		es := syntheticSeries(400, 10, 8, 500)
		for r := 150; r < 170; r++ {
			es.FBS[r] = 4 // half the blocks "gone"
		}
		return es
	}
	cfg := ASConfig()
	d := Detect(mk(), cfg)
	if len(d.Outages) != 0 {
		t.Errorf("availability sensing should filter the FBS drop: %+v", d.Outages)
	}
	cfg.AvailabilitySensing = false
	cfg.FBSRequiresIPSBelow = 0
	d = Detect(mk(), cfg)
	if len(d.Outages) == 0 {
		t.Error("with sensing off the FBS drop must be detected")
	}
}

func TestOngoingZeroBGPOutage(t *testing.T) {
	// A permanent withdrawal: the moving average adapts but the zero-BGP
	// flag keeps the outage open (§3.1).
	es := syntheticSeries(600, 10, 8, 500)
	for r := 300; r < 600; r++ {
		es.BGP[r], es.FBS[r], es.IPS[r] = 0, 0, 0
	}
	d := Detect(es, ASConfig())
	if len(d.Outages) != 1 {
		t.Fatalf("outages = %d, want 1 continuous", len(d.Outages))
	}
	o := d.Outages[0]
	if !o.Ongoing {
		t.Error("Ongoing flag missing")
	}
	if o.End != 600 {
		t.Errorf("outage should extend to the end, got %d", o.End)
	}
}

func TestMissingRoundsBridgeOutages(t *testing.T) {
	es := syntheticSeries(400, 10, 8, 500)
	for r := 200; r < 220; r++ {
		es.BGP[r], es.FBS[r], es.IPS[r] = 0, 0, 0
	}
	for r := 205; r < 212; r++ {
		es.Missing[r] = true
	}
	d := Detect(es, ASConfig())
	if len(d.Outages) != 1 {
		t.Fatalf("missing rounds split the outage: %+v", d.Outages)
	}
}

func TestMovingAverage(t *testing.T) {
	vals := []float32{10, 10, 10, 20, 20, 20}
	missing := make([]bool, 6)
	ma, ok := movingAverage(vals, missing, 6, 6)
	if !ok || ma != 15 {
		t.Errorf("ma = %f ok=%v", ma, ok)
	}
	missing[0], missing[1], missing[2], missing[3], missing[4] = true, true, true, true, true
	if _, ok := movingAverage(vals, missing, 6, 6); ok {
		t.Error("sparse window should not produce a baseline")
	}
}

func TestStatusCableCutDetected(t *testing.T) {
	sc, b := fixture(t)
	es := b.AS(25482)
	d := Detect(es, ASConfig())
	cut := sc.TL.Round(time.Date(2022, 5, 1, 12, 0, 0, 0, time.UTC))
	found := false
	for _, o := range d.Outages {
		if o.Start <= cut && cut < o.End && o.Signals.Has(SignalBGP) {
			found = true
		}
	}
	if !found {
		t.Errorf("Mykolaiv cable cut not detected for Status; outages=%d", len(d.Outages))
	}
}

func TestStatusSeizureIPSOnly(t *testing.T) {
	sc, b := fixture(t)
	es := b.AS(25482)
	d := Detect(es, ASConfig())
	// The default fixture probes every 6 h (rounds at 04/10/16/22 UTC);
	// the 06:28–14:28 seizure window covers the 10:00 round.
	at := sc.TL.Round(time.Date(2022, 5, 13, 10, 30, 0, 0, time.UTC))
	if f := d.Flags[at]; !f.Has(SignalIPS) {
		t.Errorf("seizure IPS dip not flagged: flags=%v", f)
	} else if f.Has(SignalBGP) {
		t.Errorf("seizure should not look like a BGP outage: %v", f)
	}
}

func TestOstrovNetDamOutageLong(t *testing.T) {
	sc, b := fixture(t)
	es := b.AS(56446)
	d := Detect(es, ASConfig())
	mid := sc.TL.Round(time.Date(2023, 7, 15, 12, 0, 0, 0, time.UTC))
	var covering *Outage
	for i := range d.Outages {
		if d.Outages[i].Start <= mid && mid < d.Outages[i].End {
			covering = &d.Outages[i]
		}
	}
	if covering == nil {
		t.Fatal("Kakhovka flood outage not detected for OstrovNet")
	}
	if !covering.Ongoing {
		t.Error("three-month outage should carry the ongoing flag")
	}
	if covering.Duration(sc.TL.Interval()) < 45*24*time.Hour {
		t.Errorf("outage too short: %v", covering.Duration(sc.TL.Interval()))
	}
}

func TestRegionSeriesKherson(t *testing.T) {
	sc, b := fixture(t)
	rr := fRes.Regions[netmodel.Kherson]
	es := b.Region(rr, fCl)
	d := Detect(es, RegionConfig())
	if len(d.Outages) == 0 {
		t.Fatal("no regional outages in Kherson over three years of war")
	}
	// The cable-cut window must show a regional outage too.
	cut := sc.TL.Round(time.Date(2022, 5, 1, 12, 0, 0, 0, time.UTC))
	found := false
	for _, o := range d.Outages {
		if o.Start <= cut && cut < o.End {
			found = true
		}
	}
	if !found {
		t.Error("oblast-wide cable outage missing from the regional signal")
	}
}

func TestWinterPowerOutagesNonFrontline(t *testing.T) {
	// Non-frontline regions dip in winter 2022/23 via IPS; Crimea (Russian
	// grid) does not.
	_, b := fixture(t)
	lviv := Detect(b.Region(fRes.Regions[netmodel.Lviv], fCl), RegionConfig())
	crimea := Detect(b.Region(fRes.Regions[netmodel.Crimea], fCl), RegionConfig())

	winterStart := fSc.TL.Round(time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC))
	winterEnd := fSc.TL.Round(time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC))
	count := func(d *Detection) int {
		n := 0
		for r := winterStart; r < winterEnd; r++ {
			if d.Flags[r].Has(SignalIPS) {
				n++
			}
		}
		return n
	}
	lv, cr := count(lviv), count(crimea)
	if lv == 0 {
		t.Error("no winter IPS outage rounds in Lviv")
	}
	if cr >= lv {
		t.Errorf("Crimea (%d) should see fewer winter outage rounds than Lviv (%d)", cr, lv)
	}
}

func TestBuilderEligibility(t *testing.T) {
	_, b := fixture(t)
	// Eligibility must match the store's judgement.
	for bi := 0; bi < fSt.NumBlocks(); bi += 211 {
		for m := 0; m < fSt.Timeline().NumMonths(); m += 7 {
			if b.Eligible(bi, m) != fSt.EligibleFBS(bi, m, MinEverActive) {
				t.Fatalf("eligibility mismatch at block %d month %d", bi, m)
			}
		}
	}
	// ASBlocks covers the whole space exactly once.
	total := 0
	for _, as := range fSc.Space.ASes() {
		total += len(b.ASBlocks(as.ASN))
	}
	if total != fSt.NumBlocks() {
		t.Errorf("ASBlocks covers %d of %d blocks", total, fSt.NumBlocks())
	}
}

func TestKindString(t *testing.T) {
	if (SignalBGP | SignalIPS).String() != "BGP★+IPS▲" {
		t.Errorf("got %q", (SignalBGP | SignalIPS).String())
	}
	if Kind(0).String() != "none" {
		t.Error("zero mask should render none")
	}
}
