package signals

import (
	"fmt"
	"time"

	"countrymon/internal/dataset"
	"countrymon/internal/netmodel"
)

// foldEntity is the streaming builder's handle on one built series: enough
// context to recompute a single round's contribution without re-walking the
// campaign. AS entities have nil eval and share; regional entities carry the
// per-block evaluation-month gates and the address-share weighting closure.
type foldEntity struct {
	es *EntitySeries
	// blocks are the contributing dense block indices, ascending — fold
	// accumulation must visit them in the same order as the batch build so
	// float32 rounding matches bit for bit.
	blocks []int
	eval   [][]bool
	share  func(bi, m int) float32
}

// NewStreamingBuilder is NewBuilderMinCoverage plus streaming mode: series
// built from it stay registered, and Fold advances them round by round as a
// live campaign lands data, at O(blocks) per round instead of a full
// rebuild. On a partially filled store (e.g. after resume) the initial build
// covers everything already recorded and Fold picks up from the store's
// resume cursor.
//
// The contract mirrors a campaign loop: rounds fold in nondecreasing order,
// a folded round's store cells are immutable afterwards (except the round
// being re-folded), and Fold is not called concurrently with series queries.
func NewStreamingBuilder(store *dataset.Store, space *netmodel.Space, minCoverage float64) *Builder {
	b := NewBuilderMinCoverage(store, space, minCoverage)
	b.streaming = true
	b.nextFold = store.NextUndone()
	return b
}

// Streaming reports whether the builder accepts Fold.
func (b *Builder) Streaming() bool { return b.streaming }

// NextFold returns the next round Fold expects (rounds before it are already
// folded into every warm series).
func (b *Builder) NextFold() int { return b.nextFold }

func (b *Builder) registerFold(fe *foldEntity) {
	if !b.streaming {
		return
	}
	b.foldMu.Lock()
	b.entities = append(b.entities, fe)
	b.foldMu.Unlock()
}

// Fold incorporates round's store state into every warm series. Cost is
// O(blocks this round) — independent of campaign length: the round's values
// are recomputed from scratch (so re-folding the last round, e.g. when a
// replay overlaps a checkpoint, is idempotent), eligibility maxima advance
// monotonically with FBS backfill over the current month on a threshold
// crossing, and only the affected month's IPSValidMonth is recomputed.
// Rounds already strictly behind the fold cursor are a no-op.
func (b *Builder) Fold(round int) error {
	if !b.streaming {
		return fmt.Errorf("signals: Fold on a batch builder")
	}
	if round < 0 || round >= b.tl.NumRounds() {
		return fmt.Errorf("signals: Fold round %d out of range [0,%d)", round, b.tl.NumRounds())
	}
	if round+1 < b.nextFold {
		return nil
	}
	defer b.metrics.FoldSeconds.ObserveSince(time.Now())

	b.missing[round] = b.store.EffectiveMissingAt(round, b.minCoverage)
	month := int(b.monthOf[round])

	// Advance the per-block ever-active maxima and collect threshold
	// crossings. Eligibility only ever flips false→true as rounds land, so a
	// crossing means FBS credit for the month's earlier rounds (backfill);
	// the maxima skip only true vantage outages, matching MonthStats.
	var newly []int
	if !b.store.Missing(round) {
		for bi := 0; bi < b.store.NumBlocks(); bi++ {
			c := b.store.RespSeries(bi)[round]
			i := bi*b.months + month
			if c > b.everMax[i] {
				b.everMax[i] = c
				if !b.elig[i] && c >= MinEverActive {
					b.elig[i] = true
					newly = append(newly, bi)
				}
			}
		}
	}

	b.foldMu.Lock()
	entities := b.entities
	b.foldMu.Unlock()
	for _, fe := range entities {
		b.foldEntityRound(fe, round, month, newly)
	}
	if round+1 > b.nextFold {
		b.nextFold = round + 1
	}
	return nil
}

func (b *Builder) foldEntityRound(fe *foldEntity, round, month int, newly []int) {
	es := fe.es
	if len(newly) > 0 {
		b.backfillFBS(fe, round, month, newly)
	}
	if es.Missing[round] {
		// The batch build skips missing rounds, leaving zeros — match it
		// even if an earlier fold of this round saw it non-missing.
		es.BGP[round], es.FBS[round], es.IPS[round] = 0, 0, 0
		b.fillIPSValidityMonth(es, month)
		return
	}
	var bgp, fbs, ips float32
	for i, bi := range fe.blocks {
		if fe.eval != nil && !fe.eval[i][month] {
			continue
		}
		resp := b.store.RespSeries(bi)[round]
		c := float32(resp)
		if fe.share != nil {
			c *= fe.share(bi, month)
		}
		ips += c
		if b.store.Routed(bi, round) {
			bgp++
		}
		if b.elig[bi*b.months+month] && resp > 0 {
			fbs++
		}
	}
	es.BGP[round], es.FBS[round], es.IPS[round] = bgp, fbs, ips
	b.fillIPSValidityMonth(es, month)
}

// backfillFBS credits the month's earlier rounds for blocks that just became
// FBS-eligible: in the batch build those rounds would have counted the block
// all along. FBS is an exact integer count, so incrementing in place is
// bit-identical to a rebuild. The round being folded itself is excluded —
// foldEntityRound recomputes it wholesale.
func (b *Builder) backfillFBS(fe *foldEntity, round, month int, newly []int) {
	es := fe.es
	lo, _ := b.tl.MonthRounds(month)
	// Merge-intersect the ascending newly-eligible and entity block lists.
	j := 0
	for i, bi := range fe.blocks {
		for j < len(newly) && newly[j] < bi {
			j++
		}
		if j == len(newly) {
			return
		}
		if newly[j] != bi {
			continue
		}
		if fe.eval != nil && !fe.eval[i][month] {
			continue
		}
		resp := b.store.RespSeries(bi)
		for r := lo; r < round; r++ {
			if !es.Missing[r] && resp[r] > 0 {
				es.FBS[r]++
			}
		}
	}
}
