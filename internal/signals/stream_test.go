package signals

import (
	"bytes"
	"fmt"
	"math"
	"testing"
	"time"

	"countrymon/internal/dataset"
	"countrymon/internal/netmodel"
	"countrymon/internal/par"
	"countrymon/internal/regional"
	"countrymon/internal/sim"
	"countrymon/internal/timeline"
)

// The streaming builder's contract is byte-identical equivalence with the
// batch builder at every fold prefix: a fresh NewBuilderMinCoverage over
// the same store is the oracle, because un-scanned future rounds are
// all-zero, non-missing and full-coverage — states that contribute nothing
// to any series. These tests drive a crafted campaign round by round,
// folding each round as it lands, and diff the warm series against a cold
// rebuild at regular checkpoints.

// craftedResp ramps responsiveness through each ~30-day month (120 rounds
// at 6h) so many blocks cross the MinEverActive=3 eligibility threshold
// mid-month — with resp in 1..2 beforehand, exercising the FBS backfill.
func craftedResp(bi, r int) int {
	phase := (r + bi*17) % 120
	v := phase / 20 // 0..5 over the month
	if (bi+r)%53 == 0 {
		v = 0
	}
	return v
}

// fillRound writes one crafted round into s, the way a campaign round
// handler would: a sprinkling of vantage-outage rounds, a sprinkling of
// partial rounds below the coverage gate, occasional unrouted blocks.
func fillRound(s *dataset.Store, r int) {
	if r%41 == 17 {
		s.SetMissing(r)
		return
	}
	for bi := 0; bi < s.NumBlocks(); bi++ {
		s.SetRound(bi, r, craftedResp(bi, r), (bi+r)%19 != 0)
	}
	if r%29 == 3 {
		s.SetCoverage(r, 0.5)
	}
	s.SetDone(r)
}

func assertSeriesEqual(t *testing.T, label string, want, got *EntitySeries) {
	t.Helper()
	if len(want.BGP) != len(got.BGP) {
		t.Fatalf("%s: %d rounds vs %d", label, len(want.BGP), len(got.BGP))
	}
	for r := range want.BGP {
		if math.Float32bits(want.BGP[r]) != math.Float32bits(got.BGP[r]) ||
			math.Float32bits(want.FBS[r]) != math.Float32bits(got.FBS[r]) ||
			math.Float32bits(want.IPS[r]) != math.Float32bits(got.IPS[r]) ||
			want.Missing[r] != got.Missing[r] {
			t.Fatalf("%s: round %d: batch (%g, %g, %g, missing=%v) vs stream (%g, %g, %g, missing=%v)",
				label, r,
				want.BGP[r], want.FBS[r], want.IPS[r], want.Missing[r],
				got.BGP[r], got.FBS[r], got.IPS[r], got.Missing[r])
		}
	}
	for m := range want.IPSValidMonth {
		if want.IPSValidMonth[m] != got.IPSValidMonth[m] {
			t.Fatalf("%s: month %d: batch IPS-valid %v vs stream %v",
				label, m, want.IPSValidMonth[m], got.IPSValidMonth[m])
		}
	}
}

func TestStreamingFoldMatchesBatch(t *testing.T) {
	for _, workers := range []string{"1", "8"} {
		for _, resume := range []bool{false, true} {
			t.Run(fmt.Sprintf("workers=%s,resume=%v", workers, resume), func(t *testing.T) {
				t.Setenv(par.EnvWorkers, workers)
				testStreamingFoldMatchesBatch(t, resume)
			})
		}
	}
}

func testStreamingFoldMatchesBatch(t *testing.T, resume bool) {
	sc := sim.MustBuild(sim.Config{Seed: 11, Scale: 0.02})
	blocks := sc.Space.Blocks()
	start := time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)
	tl := timeline.New(start, start.Add(479*6*time.Hour), 6*time.Hour)
	rounds := tl.NumRounds()

	// The classifier snapshots its per-block shares at construction, so
	// building it over a fully populated twin store and sharing the one
	// pointer gives both builders identical, stable share values.
	twin := dataset.NewStore(tl, blocks)
	for r := 0; r < rounds; r++ {
		fillRound(twin, r)
	}
	cl := regional.NewClassifier(sc.Space, sc.GeoDB(), twin)
	res := cl.ClassifyAll(regional.DefaultParams())

	asns := make([]netmodel.ASN, 0, 3)
	for _, as := range sc.Space.ASes() {
		asns = append(asns, as.ASN)
		if len(asns) == 3 {
			break
		}
	}
	regions := netmodel.Regions()[:2]

	inc := dataset.NewStore(tl, blocks)
	sb := NewStreamingBuilder(inc, sc.Space, DefaultMinCoverage)
	materialize := func(b *Builder) {
		for _, asn := range asns {
			b.AS(asn)
		}
		for _, rg := range regions {
			b.Region(res.Regions[rg], cl)
		}
	}
	materialize(sb)

	check := func(r int) {
		t.Helper()
		oracle := NewBuilderMinCoverage(inc, sc.Space, DefaultMinCoverage)
		for _, asn := range asns {
			assertSeriesEqual(t, fmt.Sprintf("round %d: %v", r, asn), oracle.AS(asn), sb.AS(asn))
		}
		for _, rg := range regions {
			assertSeriesEqual(t, fmt.Sprintf("round %d: %v", r, rg),
				oracle.Region(res.Regions[rg], cl), sb.Region(res.Regions[rg], cl))
		}
	}

	const checkEvery = 48
	for r := 0; r < rounds; r++ {
		fillRound(inc, r)
		if err := sb.Fold(r); err != nil {
			t.Fatalf("fold %d: %v", r, err)
		}
		if r == rounds/2 {
			if resume {
				// Kill/resume: serialize the store mid-campaign and warm a
				// fresh streaming builder from the snapshot.
				var buf bytes.Buffer
				if _, err := inc.WriteTo(&buf); err != nil {
					t.Fatal(err)
				}
				reloaded, err := dataset.ReadFrom(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				inc = reloaded
				sb = NewStreamingBuilder(inc, sc.Space, DefaultMinCoverage)
				if got := sb.NextFold(); got != r+1 {
					t.Fatalf("resumed NextFold = %d, want %d", got, r+1)
				}
				materialize(sb)
			}
			// Re-folding the newest round must be idempotent.
			if err := sb.Fold(r); err != nil {
				t.Fatalf("re-fold %d: %v", r, err)
			}
		}
		if (r+1)%checkEvery == 0 || r == rounds-1 {
			check(r)
		}
	}

	// Guard against a vacuous pass: the crafted campaign must produce
	// non-trivial AS signal values.
	var sum float64
	for _, asn := range asns {
		es := sb.AS(asn)
		for r := range es.FBS {
			sum += float64(es.FBS[r]) + float64(es.IPS[r])
		}
	}
	if sum == 0 {
		t.Fatal("crafted campaign produced all-zero AS series")
	}
}

// TestFoldRejectsBatchBuilder pins the API contract: Fold is only valid on
// a streaming builder and only within the timeline.
func TestFoldRejectsBatchBuilder(t *testing.T) {
	sc := sim.MustBuild(sim.Config{Seed: 11, Scale: 0.02})
	start := time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)
	tl := timeline.New(start, start.Add(59*6*time.Hour), 6*time.Hour)
	st := dataset.NewStore(tl, sc.Space.Blocks())

	batch := NewBuilderMinCoverage(st, sc.Space, DefaultMinCoverage)
	if err := batch.Fold(0); err == nil {
		t.Fatal("Fold on a batch builder did not error")
	}
	if batch.Streaming() {
		t.Fatal("batch builder claims streaming")
	}

	sb := NewStreamingBuilder(st, sc.Space, DefaultMinCoverage)
	if !sb.Streaming() {
		t.Fatal("streaming builder does not claim streaming")
	}
	if err := sb.Fold(tl.NumRounds()); err == nil {
		t.Fatal("out-of-range fold did not error")
	}
	// Folding an already-folded prefix round is a silent no-op.
	fillRound(st, 0)
	fillRound(st, 1)
	if err := sb.Fold(1); err != nil {
		t.Fatal(err)
	}
	if err := sb.Fold(0); err != nil {
		t.Fatalf("no-op re-fold of an old round: %v", err)
	}
	if got := sb.NextFold(); got != 2 {
		t.Fatalf("NextFold = %d, want 2", got)
	}
}

// benchCampaignStore builds a full three-year bi-hourly campaign at small
// spatial scale: the per-round fold cost is O(blocks), the rebuild cost
// O(blocks × rounds), so the ~13k-round timeline is what separates them.
func benchCampaignStore(b *testing.B) (*dataset.Store, *netmodel.Space) {
	b.Helper()
	sc := sim.MustBuild(sim.Config{Seed: 5, Scale: 0.02})
	return sc.GenerateStore(nil), sc.Space
}

// BenchmarkFoldRound measures folding one new round into a warm streaming
// builder with every AS series materialized — the steady-state analysis
// cost per campaign round.
func BenchmarkFoldRound(b *testing.B) {
	st, space := benchCampaignStore(b)
	sb := NewStreamingBuilder(st, space, DefaultMinCoverage)
	for _, as := range space.ASes() {
		sb.AS(as.ASN)
	}
	last := st.Timeline().NumRounds() - 1
	b.ReportAllocs()
	b.ResetTimer()
	startT := time.Now()
	for i := 0; i < b.N; i++ {
		if err := sb.Fold(last); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if wall := time.Since(startT).Seconds(); wall > 0 {
		b.ReportMetric(float64(b.N)/wall, "rounds_per_sec")
		b.ReportMetric(wall*1e9/float64(b.N), "fold_ns_per_round")
	}
}

// BenchmarkBuilderRebuild is the cost the fold replaces: a cold batch
// rebuild with the same AS series materialized, per round handled.
func BenchmarkBuilderRebuild(b *testing.B) {
	st, space := benchCampaignStore(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bb := NewBuilderMinCoverage(st, space, DefaultMinCoverage)
		for _, as := range space.ASes() {
			bb.AS(as.ASN)
		}
	}
}
