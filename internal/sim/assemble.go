package sim

import (
	"fmt"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/power"
	"countrymon/internal/timeline"
)

// Spec assembles a Scenario directly from data instead of the scripted war
// generator: the caller supplies the address space, per-block ground truth
// and the event script, and Assemble wires up the same evaluation machinery
// Build produces — the packet-level Responder, the statistical generator and
// the Trinocular probe view all work identically. internal/scenario compiles
// its declarative files through this.
type Spec struct {
	// Cfg needs Seed, Interval, Start and End; Scale is ignored (the space
	// is given explicitly).
	Cfg Config
	// Country is the ISO code the spec's address space geolocates to;
	// empty defaults to DefaultCountry (pre-multi-country specs all
	// describe Ukraine). CountryName is the display name.
	Country     string
	CountryName string
	// ASes carries one traits entry per AS; each entry's AS pointer must be
	// populated, including its Prefixes.
	ASes []ASTraits
	// Blocks is the per-/24 ground truth, one entry per block of every AS
	// prefix (any order). A zero-valued move script (MoveMonth 0 with no
	// destination) is normalized to "never moves".
	Blocks []BlockTraits
	// Events is the scripted disruption list, in any order — indexing sorts
	// defensively.
	Events []Event
	// Power is the electricity ground truth; nil means a flat schedule with
	// no outages.
	Power *power.Schedule
	// Missing marks vantage-outage rounds; nil means none. When non-nil its
	// length must equal the timeline's round count.
	Missing []bool
	// Leased lists foreign-delegated ASes that geolocate into the country
	// but are absent from the target set.
	Leased []*netmodel.AS
}

// Assemble builds a Scenario from an explicit Spec. Unlike Build it scripts
// nothing itself: what is in the spec is the whole world.
func Assemble(spec Spec) (*Scenario, error) {
	cfg := spec.Cfg
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("sim: assemble: Interval must be positive")
	}
	if cfg.Start.IsZero() || !cfg.End.After(cfg.Start) {
		return nil, fmt.Errorf("sim: assemble: Start and End must bound a non-empty campaign")
	}
	if len(spec.ASes) == 0 {
		return nil, fmt.Errorf("sim: assemble: at least one AS is required")
	}
	tl := timeline.New(cfg.Start, cfg.End, cfg.Interval)

	ases := make([]*netmodel.AS, len(spec.ASes))
	traits := make(map[netmodel.ASN]*ASTraits, len(spec.ASes))
	for i := range spec.ASes {
		tr := spec.ASes[i] // copy: the scenario owns its traits
		if tr.AS == nil {
			return nil, fmt.Errorf("sim: assemble: ASes[%d] has no AS", i)
		}
		if _, dup := traits[tr.AS.ASN]; dup {
			return nil, fmt.Errorf("sim: assemble: duplicate AS %d", tr.AS.ASN)
		}
		ases[i] = tr.AS
		traits[tr.AS.ASN] = &tr
	}
	space, err := netmodel.BuildSpace(ases)
	if err != nil {
		return nil, fmt.Errorf("sim: assemble: %w", err)
	}

	bt := make(map[netmodel.BlockID]*BlockTraits, len(spec.Blocks))
	for i := range spec.Blocks {
		t := spec.Blocks[i] // copy
		if _, dup := bt[t.Block]; dup {
			return nil, fmt.Errorf("sim: assemble: duplicate traits for block %v", t.Block)
		}
		// Zero-value move script means "never moves": Moved() treats
		// MoveMonth 0 as a scripted month-0 move, which no caller building
		// traits literally ever wants.
		if t.MoveMonth == 0 && !t.MoveRegion.Valid() && t.MoveCountry == "" && t.MoveASN == 0 {
			t.MoveMonth = -1
		}
		bt[t.Block] = &t
	}

	pow := spec.Power
	if pow == nil {
		pow = power.Scripted(cfg.Start, tl.NumDays(), nil, cfg.Seed^0x9041)
	}
	missing := spec.Missing
	if missing == nil {
		missing = make([]bool, tl.NumRounds())
	} else if len(missing) != tl.NumRounds() {
		return nil, fmt.Errorf("sim: assemble: Missing has %d rounds, timeline %d",
			len(missing), tl.NumRounds())
	}

	country := spec.Country
	if country == "" {
		country = DefaultCountry
	}
	sc := &Scenario{
		Cfg:         cfg,
		TL:          tl,
		Space:       space,
		Power:       pow,
		Missing:     missing,
		Country:     country,
		CountryName: spec.CountryName,
		asTraits:    traits,
		events:      append([]Event(nil), spec.Events...),
		leased:      spec.Leased,
	}
	sc.liveOrder.seed = cfg.Seed ^ 0x11fe
	sc.blocks = make([]BlockTraits, space.NumBlocks())
	for i, blk := range space.Blocks() {
		t, ok := bt[blk]
		if !ok {
			return nil, fmt.Errorf("sim: assemble: block %v has no traits", blk)
		}
		sc.blocks[i] = *t
	}
	sc.indexEvents()
	return sc, nil
}

// MustAssemble is Assemble that panics on error (for static scenario specs).
func MustAssemble(spec Spec) *Scenario {
	s, err := Assemble(spec)
	if err != nil {
		panic(err)
	}
	return s
}

// SpecEnd returns the End bound for a campaign of the given number of whole
// days probed at interval: the last round lands interval before the next day
// boundary, so NumRounds == days·24h/interval exactly.
func SpecEnd(start time.Time, days int, interval time.Duration) time.Time {
	return start.Add(time.Duration(days)*24*time.Hour - interval)
}
