package sim

import (
	"bytes"
	"testing"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/power"
)

// assembleSpec builds a small two-AS world with the given event order.
func assembleSpec(t *testing.T, events []Event) Spec {
	t.Helper()
	start := time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC)
	mkAS := func(asn netmodel.ASN, name string, hq netmodel.Region, prefixes ...string) ASTraits {
		as := &netmodel.AS{ASN: asn, Name: name, HQ: hq}
		for _, p := range prefixes {
			as.Prefixes = append(as.Prefixes, netmodel.MustParsePrefix(p))
		}
		return ASTraits{AS: as}
	}
	spec := Spec{
		Cfg: Config{
			Seed: 42, Interval: 4 * time.Hour,
			Start: start, End: SpecEnd(start, 30, 4*time.Hour),
		},
		ASes: []ASTraits{
			mkAS(64500, "Alpha", netmodel.Kyiv, "100.64.0.0/23"),
			mkAS(64501, "Beta", netmodel.Lviv, "100.64.2.0/24"),
		},
		Events: events,
	}
	for _, tr := range spec.ASes {
		for _, blk := range tr.AS.Blocks() {
			spec.Blocks = append(spec.Blocks, BlockTraits{
				Block: blk, ASN: tr.AS.ASN, HomeRegion: tr.AS.HQ,
				Density: 50, RespRate: 0.8, DeclineTo: 1,
			})
		}
	}
	return spec
}

func assembleEvents(start time.Time) []Event {
	return []Event{
		{
			Name: "late-outage", Kind: EffectSilent,
			From: start.Add(20 * 24 * time.Hour), To: start.Add(21 * 24 * time.Hour),
			ASNs: []netmodel.ASN{64500},
		},
		{
			Name: "early-outage", Kind: EffectBGPDown,
			From: start.Add(10 * 24 * time.Hour), To: start.Add(10*24*time.Hour + 12*time.Hour),
			ASNs: []netmodel.ASN{64501},
		},
		{
			Name: "early-drop", Kind: EffectIPSDrop, Magnitude: 0.5,
			From: start.Add(10 * 24 * time.Hour), To: start.Add(12 * 24 * time.Hour),
			Regions: []netmodel.Region{netmodel.Kyiv},
		},
	}
}

// TestAssembleSortsOutOfOrderEvents is the indexEvents regression test: the
// Kherson script happens to append events chronologically, but assembled
// scenarios may not — indexing must not assume pre-sorted input.
func TestAssembleSortsOutOfOrderEvents(t *testing.T) {
	start := time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC)
	evs := assembleEvents(start)
	shuffled := []Event{evs[0], evs[2], evs[1]} // late first
	ordered := []Event{evs[1], evs[2], evs[0]}

	scShuf := MustAssemble(assembleSpec(t, shuffled))
	scOrd := MustAssemble(assembleSpec(t, ordered))

	// Events() comes back chronological regardless of input order.
	got := scShuf.Events()
	if len(got) != 3 {
		t.Fatalf("events = %d, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].From.Before(got[i-1].From) {
			t.Fatalf("events not sorted: %q (%v) after %q (%v)",
				got[i].Name, got[i].From, got[i-1].Name, got[i-1].From)
		}
	}
	if got[0].Name != "early-drop" || got[1].Name != "early-outage" {
		t.Fatalf("equal-From events not name-ordered: %q, %q", got[0].Name, got[1].Name)
	}

	// Ground truth is identical whichever order the events were supplied in.
	var bufShuf, bufOrd bytes.Buffer
	if _, err := scShuf.GenerateStore(nil).WriteTo(&bufShuf); err != nil {
		t.Fatal(err)
	}
	if _, err := scOrd.GenerateStore(nil).WriteTo(&bufOrd); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufShuf.Bytes(), bufOrd.Bytes()) {
		t.Fatal("stores differ between shuffled and ordered event input")
	}

	// The events took effect: Beta's block is unrouted during early-outage.
	bi := scShuf.Space.BlockIndex(netmodel.MustParsePrefix("100.64.2.0/24").Base.Block())
	if bi < 0 {
		t.Fatal("Beta block missing from space")
	}
	if st := scShuf.BlockStateAt(bi, start.Add(10*24*time.Hour+2*time.Hour)); st.Routed {
		t.Fatal("Beta block routed during its BGP-down event")
	}
}

func TestAssembleDefaultsAndValidation(t *testing.T) {
	start := time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC)
	spec := assembleSpec(t, nil)
	sc := MustAssemble(spec)

	if got := sc.TL.NumRounds(); got != 30*6 {
		t.Fatalf("rounds = %d, want %d", got, 30*6)
	}
	if len(sc.Missing) != sc.TL.NumRounds() {
		t.Fatalf("missing mask = %d rounds", len(sc.Missing))
	}
	// Default power schedule is flat: never out, so responsiveness is the
	// plain density × rate everywhere.
	for _, r := range netmodel.Regions() {
		if sc.Power.Out(r, start.Add(50*time.Hour)) {
			t.Fatalf("default power schedule reports outage in %v", r)
		}
	}
	// Zero-valued move scripts are normalized to "never moves".
	for bi := range sc.Blocks() {
		bt := sc.BlockTraitsAt(bi)
		if bt.MoveMonth != -1 {
			t.Fatalf("block %v MoveMonth = %d, want -1", bt.Block, bt.MoveMonth)
		}
		if sc.CurrentRegion(bi, 0) != bt.HomeRegion {
			t.Fatalf("block %v not at home in month 0", bt.Block)
		}
	}
	if sc.ASTraitsOf(64500) == nil || sc.ASTraitsOf(64501) == nil {
		t.Fatal("AS traits not registered")
	}

	// Explicit missing mask must match the timeline.
	bad := assembleSpec(t, nil)
	bad.Missing = make([]bool, 7)
	if _, err := Assemble(bad); err == nil {
		t.Fatal("short Missing mask accepted")
	}
	// Interval and bounds are required.
	bad = assembleSpec(t, nil)
	bad.Cfg.Interval = 0
	if _, err := Assemble(bad); err == nil {
		t.Fatal("zero interval accepted")
	}
	bad = assembleSpec(t, nil)
	bad.Cfg.End = bad.Cfg.Start
	if _, err := Assemble(bad); err == nil {
		t.Fatal("empty campaign accepted")
	}
	// Duplicate ASN and missing block traits are rejected.
	bad = assembleSpec(t, nil)
	bad.ASes[1].AS.ASN = 64500
	if _, err := Assemble(bad); err == nil {
		t.Fatal("duplicate ASN accepted")
	}
	bad = assembleSpec(t, nil)
	bad.Blocks = bad.Blocks[:1]
	if _, err := Assemble(bad); err == nil {
		t.Fatal("blocks without traits accepted")
	}

	// A scripted power schedule passes through.
	withPower := assembleSpec(t, nil)
	withPower.Power = power.Scripted(start, 30, []power.Strike{
		{Day: 3, Days: 1, Hours: 24, Regions: []netmodel.Region{netmodel.Kyiv}},
	}, 1)
	sc = MustAssemble(withPower)
	if !sc.Power.Out(netmodel.Kyiv, start.Add(3*24*time.Hour+6*time.Hour)) {
		t.Fatal("scripted 24h outage not visible")
	}
}
