package sim

import (
	"fmt"
	"sort"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/power"
	"countrymon/internal/timeline"
)

// regionParam drives generation for one region.
type regionParam struct {
	Weight     float64 // share of the national block pool
	RegionalAS int     // regional AS count at full scale (Fig 3 shape)
	ChurnPct   float64 // target IPv4 count change 2022-02 → 2025-02 (Fig 1)
}

// regionParams encodes the paper's per-oblast structure: weights give the
// Fig 6/7 distribution of blocks, RegionalAS the Fig 3 distribution, and
// ChurnPct the Fig 1 changes (frontline losses up to −67%, Chernihiv +24%).
var regionParams = map[netmodel.Region]regionParam{
	netmodel.Cherkasy:       {0.024, 45, -27},
	netmodel.Chernihiv:      {0.020, 40, +24},
	netmodel.Chernivtsi:     {0.015, 30, -8},
	netmodel.Crimea:         {0.018, 25, -20},
	netmodel.Dnipropetrovsk: {0.080, 120, -8},
	netmodel.Donetsk:        {0.050, 80, -56},
	netmodel.IvanoFrankivsk: {0.025, 45, -12},
	netmodel.Kharkiv:        {0.070, 110, -27},
	netmodel.Kherson:        {0.013, 13, -62},
	netmodel.Khmelnytskyi:   {0.022, 40, -12},
	netmodel.Kirovohrad:     {0.018, 30, -10},
	netmodel.Kyiv:           {0.250, 230, +13},
	netmodel.Luhansk:        {0.020, 35, -67},
	netmodel.Lviv:           {0.060, 100, -5},
	netmodel.Mykolaiv:       {0.025, 40, -15},
	netmodel.Odessa:         {0.070, 100, -11},
	netmodel.Poltava:        {0.030, 50, -7},
	netmodel.Rivne:          {0.020, 35, -24},
	netmodel.Sevastopol:     {0.008, 12, -15},
	netmodel.Sumy:           {0.022, 40, -21},
	netmodel.Ternopil:       {0.016, 30, -10},
	netmodel.Transcarpathia: {0.018, 32, -9},
	netmodel.Vinnytsia:      {0.026, 45, -12},
	netmodel.Volyn:          {0.020, 35, -37},
	netmodel.Zaporizhzhia:   {0.035, 55, -52},
	netmodel.Zhytomyr:       {0.024, 40, -30},
}

// weightedRegion picks a region proportional to its block weight.
func weightedRegion(h uint64) netmodel.Region {
	u := unitFloat(h)
	acc := 0.0
	for _, r := range netmodel.Regions() {
		acc += regionParams[r].Weight
		if u < acc {
			return r
		}
	}
	return netmodel.Kyiv
}

// nationalISP describes a country-wide provider.
type nationalISP struct {
	ASN     netmodel.ASN
	Name    string
	Blocks  int // at full scale
	Foreign bool
}

var nationalISPs = []nationalISP{
	{15895, "Kyivstar", 3600, false},
	{6849, "Ukrtelecom", 3400, false},
	{21497, "Vodafone", 2400, false},
	{25229, "Volia", 1500, false},
	{6877, "Ukrtelecom", 1200, false},
	{21219, "Datagroup", 500, false},
	{13188, "Triolan", 450, false},
	{12883, "Vega", 400, false},
	{39608, "Lanet", 350, false},
	{6703, "Alkar-As", 300, false},
	{6698, "Virtualsystems", 200, false},
	{6846, "Infocom", 120, false},
	{30823, "Aurologic", 40, true},
	{12687, "Uran Kiev", 30, false},
}

// addressPools are the UA-delegated ranges blocks are carved from.
var addressPools = []netmodel.Prefix{
	netmodel.MustParsePrefix("5.56.0.0/13"),
	netmodel.MustParsePrefix("31.128.0.0/11"),
	netmodel.MustParsePrefix("37.52.0.0/14"),
	netmodel.MustParsePrefix("46.96.0.0/12"),
	netmodel.MustParsePrefix("77.88.0.0/13"),
	netmodel.MustParsePrefix("91.192.0.0/12"),
	netmodel.MustParsePrefix("93.72.0.0/13"),
	netmodel.MustParsePrefix("109.86.0.0/15"),
	netmodel.MustParsePrefix("176.8.0.0/13"),
	netmodel.MustParsePrefix("178.92.0.0/14"),
	netmodel.MustParsePrefix("188.16.0.0/12"),
	netmodel.MustParsePrefix("193.16.0.0/12"),
	netmodel.MustParsePrefix("194.0.0.0/13"),
	netmodel.MustParsePrefix("195.24.0.0/13"),
	netmodel.MustParsePrefix("212.40.0.0/13"),
	netmodel.MustParsePrefix("213.108.0.0/14"),
}

// leasedPool is foreign-delegated space used inside Ukraine (the AlfaTelecom
// leasing limitation, §4.3).
var leasedPool = netmodel.MustParsePrefix("185.66.0.0/16")

type builder struct {
	cfg    Config
	tl     *timeline.Timeline
	seed   uint64
	pool   int
	cursor netmodel.BlockID
	ases   []*netmodel.AS
	traits map[netmodel.ASN]*ASTraits
	bt     map[netmodel.BlockID]*BlockTraits
	events []Event

	khersonBlocksOf map[netmodel.ASN][]netmodel.BlockID
	statusBlocks    []netmodel.BlockID
	leased          []*netmodel.AS
	leasedCursor    netmodel.BlockID
}

// Ukraine returns the bundled Ukraine country model: the paper's scripted
// war generator, expressed as CountryModel data. The generator emits plain
// Spec values — regions, ASes, blocks and events — and building the model
// is nothing but Assemble over them, so Ukraine is one instance of the
// data-driven country model rather than a special-cased construction path.
func Ukraine(cfg Config) (CountryModel, error) {
	cfg = cfg.withDefaults()
	b := &builder{
		cfg:             cfg,
		tl:              timeline.New(cfg.Start, cfg.End, cfg.Interval),
		seed:            cfg.Seed,
		cursor:          addressPools[0].Base.Block(),
		traits:          make(map[netmodel.ASN]*ASTraits),
		bt:              make(map[netmodel.BlockID]*BlockTraits),
		khersonBlocksOf: make(map[netmodel.ASN][]netmodel.BlockID),
		leasedCursor:    leasedPool.Base.Block(),
	}
	b.buildKhersonTable5()
	b.buildNationalISPs()
	b.buildRegionalASes()
	b.buildMultiRegionASes()
	b.buildLeasedASes()
	b.applyChurn()
	b.events = append(b.events, khersonEvents(b.statusBlocks, b.khersonBlocksOf)...)
	b.generateFrontlineNoise()

	spec := Spec{
		Cfg:         cfg,
		Country:     "UA",
		CountryName: "Ukraine",
		Events:      b.events,
		Power:       power.Generate(power.Config{Start: cfg.Start, End: cfg.End, Seed: cfg.Seed ^ 0x9041}),
		Missing:     timeline.MissingRounds(b.tl, timeline.DefaultVantageOutages()),
		Leased:      b.leased,
	}
	for _, as := range b.ases {
		spec.ASes = append(spec.ASes, *b.traits[as.ASN])
	}
	for _, as := range b.ases {
		for _, blk := range as.Blocks() {
			t, ok := b.bt[blk]
			if !ok {
				return CountryModel{}, fmt.Errorf("sim: block %v has no traits", blk)
			}
			spec.Blocks = append(spec.Blocks, *t)
		}
	}
	return CountryModel{Code: "UA", Name: "Ukraine", Spec: spec}, nil
}

// Build constructs the bundled Ukraine scenario deterministically from the
// config: the Ukraine model assembled like any other country model.
func Build(cfg Config) (*Scenario, error) {
	m, err := Ukraine(cfg)
	if err != nil {
		return nil, err
	}
	return m.Build()
}

// MustBuild is Build that panics on error (scenario scripts are static).
func MustBuild(cfg Config) *Scenario {
	s, err := Build(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func (b *builder) h(vals ...uint64) uint64 {
	x := b.seed
	for _, v := range vals {
		x = hash2(x, v)
	}
	return x
}

// alloc carves n contiguous /24 blocks from the UA pools.
func (b *builder) alloc(n int) []netmodel.Prefix {
	var out []netmodel.Prefix
	for n > 0 {
		pool := addressPools[b.pool]
		poolEnd := pool.Base.Block() + netmodel.BlockID(pool.NumBlocks())
		if b.cursor >= poolEnd {
			b.pool++
			if b.pool >= len(addressPools) {
				panic("sim: address pools exhausted")
			}
			b.cursor = addressPools[b.pool].Base.Block()
			continue
		}
		// Largest aligned power-of-two run that fits both n and the pool.
		run := 1
		for run*2 <= n && b.cursor%netmodel.BlockID(run*2) == 0 &&
			b.cursor+netmodel.BlockID(run*2) <= poolEnd {
			run *= 2
		}
		bits := uint8(24)
		for r := run; r > 1; r /= 2 {
			bits--
		}
		out = append(out, netmodel.MustNewPrefix(b.cursor.First(), bits))
		b.cursor += netmodel.BlockID(run)
		n -= run
	}
	return out
}

func (b *builder) scaleCount(full int) int {
	n := int(float64(full)*b.cfg.Scale + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// addAS registers an AS with n blocks and returns the block IDs.
func (b *builder) addAS(as *netmodel.AS, n int, tr ASTraits) []netmodel.BlockID {
	as.Prefixes = b.alloc(n)
	b.ases = append(b.ases, as)
	tr.AS = as
	b.traits[as.ASN] = &tr
	blocks := as.Blocks()
	for _, blk := range blocks {
		b.bt[blk] = &BlockTraits{Block: blk, ASN: as.ASN, MoveMonth: -1}
	}
	return blocks
}

// blockDefaults fills responsiveness traits for a block given its context.
func (b *builder) blockDefaults(t *BlockTraits, region netmodel.Region, regionalAS bool) {
	t.HomeRegion = region
	h := b.h(0x8811, uint64(t.Block))
	u := unitFloat(h)

	frontline := region.Frontline()
	switch {
	case region == netmodel.Kherson:
		t.Density = uint8(12 + h>>8%34) // 12..45
		t.RespRate = float32(0.30 + 0.25*u)
		t.DeclineTo = float32(0.25 + 0.20*unitFloat(h>>16))
	case frontline:
		t.Density = uint8(10 + h>>8%50) // 10..59
		t.RespRate = float32(0.35 + 0.30*u)
		t.DeclineTo = float32(0.30 + 0.35*unitFloat(h>>16))
	default:
		if u < 0.38 && !regionalAS {
			// Sparse block: effectively unused address space.
			t.Density = uint8(h >> 8 % 3) // 0..2
			t.RespRate = 0.5
			t.DeclineTo = 1
			return
		}
		t.Density = uint8(20 + h>>8%160) // 20..179
		t.RespRate = float32(0.50 + 0.35*unitFloat(h>>24))
		t.DeclineTo = float32(0.75 + 0.30*unitFloat(h>>16))
	}
	t.Diurnal = h>>32%100 < 15
	// Frontline providers are war-hardened (generators, PON, §6); the
	// share of grid-sensitive edges is higher in quieter oblasts.
	if frontline {
		t.GridSensitive = h>>40%100 < 18
	} else {
		t.GridSensitive = h>>40%100 < 30
	}
	if t.GridSensitive {
		t.BackupHours = float32(1.5 + 4.5*unitFloat(h>>48)) // 1.5..6h
	} else {
		t.BackupHours = float32(3 + 6*unitFloat(h>>48)) // 3..9h
	}
	t.Static = regionalAS && h>>56%100 < 75
	// Persistent IP drift to a neighbouring region for ~10% of blocks.
	if h>>4%100 < 10 {
		t.DriftFrac = float32(0.1 + 0.3*unitFloat(h>>12))
		t.DriftRegion = weightedRegion(b.h(0xd1, uint64(t.Block)))
		if t.DriftRegion == region {
			t.DriftRegion = netmodel.Kyiv
		}
		if region == netmodel.Kyiv && t.DriftRegion == netmodel.Kyiv {
			t.DriftRegion = netmodel.Vinnytsia
		}
	}
}

func ceaseDate(h uint64) time.Time {
	// Spread cease dates over 2022-10 .. 2024-09.
	months := int(h % 24)
	return time.Date(2022, time.Month(10+months), 1, 0, 0, 0, 0, time.UTC)
}

func (b *builder) buildKhersonTable5() {
	for _, k := range khersonTable5() {
		if k.National {
			continue // carved out of the national pool later
		}
		hq := k.HQ
		foreign := k.Foreign
		tr := ASTraits{ActiveFrom: k.ActiveFrom}
		if k.CeasedBy2025 {
			tr.ActiveTo = ceaseDate(b.h(0xcea5e, uint64(k.ASN)))
		}
		as := &netmodel.AS{ASN: k.ASN, Name: k.Name, HQ: hq, Foreign: foreign}
		blocks := b.addAS(as, k.RegionalBlocks+k.ExtraBlocks, tr)

		for i, blk := range blocks {
			t := b.bt[blk]
			if i < k.RegionalBlocks {
				b.blockDefaults(t, netmodel.Kherson, k.Regional)
				t.Static = true // regional Kherson blocks geolocate precisely
				b.khersonBlocksOf[k.ASN] = append(b.khersonBlocksOf[k.ASN], blk)
			} else {
				// Extra blocks live in neighbouring oblasts (or Kyiv for
				// Status's fourth block), keeping the AS non-regional.
				dest := netmodel.Mykolaiv
				switch b.h(0xe7a, uint64(blk)) % 3 {
				case 0:
					dest = netmodel.Kyiv
				case 1:
					dest = netmodel.Dnipropetrovsk
				}
				if k.ASN == 25482 {
					dest = netmodel.Kyiv // Status's documented Kyiv block
				}
				b.blockDefaults(t, dest, false)
				t.Static = true
			}
		}
		if k.ASN == 25482 {
			b.statusBlocks = blocks // 3 Kherson + 1 Kyiv, allocation order
		}
	}
}

func (b *builder) buildNationalISPs() {
	// Kherson-regional carve-outs per Table 5 (fixed, not scaled).
	khCarve := map[netmodel.ASN]int{
		25229: 32, 15895: 10, 6877: 10, 6849: 6, 6703: 3,
		6698: 2, 30823: 2, 12883: 1, 6846: 1, 12687: 1,
	}
	for _, isp := range nationalISPs {
		kh := khCarve[isp.ASN]
		n := b.scaleCount(isp.Blocks)
		if n < kh+3 {
			n = kh + 3
		}
		hq := netmodel.Kyiv
		if isp.Foreign {
			hq = netmodel.RegionNone
		}
		as := &netmodel.AS{ASN: isp.ASN, Name: isp.Name, HQ: hq, Foreign: isp.Foreign}
		blocks := b.addAS(as, n, ASTraits{National: true})
		for i, blk := range blocks {
			t := b.bt[blk]
			switch {
			case i < kh:
				// Stable Kherson-regional blocks of a national ISP.
				b.blockDefaults(t, netmodel.Kherson, false)
				t.Static = true
				b.khersonBlocksOf[isp.ASN] = append(b.khersonBlocksOf[isp.ASN], blk)
			case b.h(0xd11a, uint64(blk))%100 < 35:
				// Dynamic pool: hops regions every few months.
				b.blockDefaults(t, weightedRegion(b.h(0x9a, uint64(blk))), false)
				t.Dynamic = true
				t.Static = false
			default:
				b.blockDefaults(t, weightedRegion(b.h(0x9b, uint64(blk))), false)
				if b.h(0x5a4, uint64(blk))%100 < 40 {
					t.Static = true
				}
			}
		}
	}
}

func (b *builder) buildRegionalASes() {
	asn := netmodel.ASN(48000)
	for _, region := range netmodel.Regions() {
		if region == netmodel.Kherson {
			continue // exact Table-5 modelling
		}
		count := b.scaleCount(regionParams[region].RegionalAS)
		for i := 0; i < count; i++ {
			asn++
			u := unitFloat(b.h(0x4e9, uint64(asn)))
			size := 1 + int(39*u*u*u) // heavy tail of small providers
			as := &netmodel.AS{ASN: asn, Name: fmt.Sprintf("%s-Net-%d", region, i+1), HQ: region}
			blocks := b.addAS(as, size, ASTraits{})
			for _, blk := range blocks {
				b.blockDefaults(b.bt[blk], region, true)
			}
		}
	}
}

func (b *builder) buildMultiRegionASes() {
	asn := netmodel.ASN(62000)
	count := b.scaleCount(470)
	for i := 0; i < count; i++ {
		asn++
		h := b.h(0x3417, uint64(asn))
		size := 3 + int(h%10)
		as := &netmodel.AS{ASN: asn, Name: fmt.Sprintf("Multi-%d", i+1), HQ: weightedRegion(h >> 8)}
		blocks := b.addAS(as, size, ASTraits{})
		for j, blk := range blocks {
			region := weightedRegion(b.h(0x88, uint64(asn), uint64(j)))
			b.blockDefaults(b.bt[blk], region, false)
		}
	}
}

// buildLeasedASes models providers using foreign-delegated space: present in
// geolocation, absent from the UA target set (Stream Kherson and Online Net,
// plus a few generated elsewhere).
func (b *builder) buildLeasedASes() {
	add := func(asn netmodel.ASN, name string, blocks int) {
		as := &netmodel.AS{ASN: asn, Name: name, HQ: netmodel.Kherson}
		var ps []netmodel.Prefix
		for i := 0; i < blocks; i++ {
			ps = append(ps, netmodel.MustNewPrefix(b.leasedCursor.First(), 24))
			b.leasedCursor++
		}
		as.Prefixes = ps
		b.leased = append(b.leased, as)
	}
	add(42782, "Stream Kherson", 3)
	add(39667, "Online Net", 2)
}

// applyChurn scripts the Fig-1 address migration: declining regions lose a
// hash-selected fraction of their blocks to Kyiv/Chernihiv or abroad.
func (b *builder) applyChurn() {
	months := b.tl.NumMonths()
	for blk, t := range b.bt {
		if t.Dynamic || !t.HomeRegion.Valid() {
			continue
		}
		churn := regionParams[t.HomeRegion].ChurnPct
		if churn >= 0 {
			continue
		}
		h := b.h(0xc4a, uint64(blk))
		moveFrac := -churn / 100
		abroadShare := 0.55
		if t.HomeRegion == netmodel.Kherson {
			moveFrac = 0.74 // only 26% of Kherson IPs remained (§4.1)
			abroadShare = 0.29 / 0.74
		}
		hMove := mix64(h ^ 0x01)
		hDest := mix64(h ^ 0x02)
		hCountry := mix64(h ^ 0x03)
		hMonth := mix64(h ^ 0x04)
		if unitFloat(hMove) >= moveFrac {
			continue
		}
		// Kherson's 13 regional providers keep their blocks home while
		// announced (their outages are the study's subject). Blocks of the
		// seven providers that cease announcing drift abroad a couple of
		// months later, and a share of the others' geolocations churn away
		// late in the campaign — late enough that the ≥70%-of-routed-months
		// rule still classifies them regional. This is what pushes
		// Kherson's retained share down to ~26% (§4.1).
		if isKhersonRegionalASN(t.ASN) {
			tr := b.traits[t.ASN]
			months := int16(b.tl.NumMonths())
			switch {
			case tr != nil && !tr.ActiveTo.IsZero():
				mc := int16(b.tl.MonthIndex(tr.ActiveTo)) + 2
				if mc < months {
					t.MoveMonth = mc
					t.MoveRegion = netmodel.RegionNone
					t.MoveCountry = "US"
				}
			case unitFloat(mix64(h^0x05)) < 0.35 && months > 6:
				t.MoveMonth = months - 3 - int16(mix64(h^0x06)%3)
				t.MoveRegion = netmodel.Kyiv
			}
			continue
		}
		t.MoveMonth = int16(1 + hMonth%uint64(months-2))
		if unitFloat(hDest) < abroadShare {
			t.MoveRegion = netmodel.RegionNone
			switch v := hCountry % 100; {
			case v < 62:
				t.MoveCountry = "US"
				if t.ASN == 25229 { // Volia Kherson blocks → Amazon
					t.MoveASN = 16509
				}
			case v < 69:
				t.MoveCountry = "RU"
			case v < 73:
				t.MoveCountry = "DE"
			case v < 85:
				t.MoveCountry = "PL"
			default:
				t.MoveCountry = "NL"
			}
		} else {
			if hCountry>>32%100 < 78 {
				t.MoveRegion = netmodel.Kyiv
			} else {
				t.MoveRegion = netmodel.Chernihiv
			}
		}
	}
}

func isKhersonRegionalASN(asn netmodel.ASN) bool {
	for _, k := range khersonTable5() {
		if k.ASN == asn {
			return k.Regional
		}
	}
	return false
}

// generateFrontlineNoise scripts the recurring kinetic disruptions of
// frontline oblasts (and rare incidents elsewhere) that give Fig 8/9 their
// frontline-vs-non-frontline contrast.
func (b *builder) generateFrontlineNoise() {
	// Collect regional ASes per region as event targets.
	perRegion := make(map[netmodel.Region][]netmodel.ASN)
	for _, as := range b.ases {
		if tr := b.traits[as.ASN]; tr != nil && !tr.National && as.HQ.Valid() {
			perRegion[as.HQ] = append(perRegion[as.HQ], as.ASN)
		}
	}
	for _, region := range perRegion {
		sort.Slice(region, func(i, j int) bool { return region[i] < region[j] })
	}
	days := b.tl.NumDays()
	// Frontline oblasts additionally suffer region-scoped kinetic damage
	// (shelling of shared infrastructure), which decouples their Internet
	// outages from the power schedule (§5.1: frontline r = 0.298 vs 0.725).
	for _, region := range netmodel.FrontlineRegions() {
		if region == netmodel.Kherson {
			continue // Kherson has its own dense event script
		}
		for d := 0; d < days; d += 12 {
			h := b.h(0x4e6, uint64(region), uint64(d))
			if h%100 < 45 {
				continue
			}
			start := b.tl.Start().Add(time.Duration(d)*24*time.Hour +
				time.Duration(h>>16%uint64(12*24))*time.Hour)
			dur := time.Duration(6+h>>24%66) * time.Hour // 6h .. 3d
			ev := Event{
				Name: fmt.Sprintf("kinetic-%s-%d", region, d),
				From: start, To: start.Add(dur),
				Regions: []netmodel.Region{region},
			}
			if h>>32%2 == 0 {
				ev.Kind = EffectSilent
			} else {
				ev.Kind = EffectIPSDrop
				ev.Magnitude = 0.5 + 0.4*unitFloat(h>>40)
			}
			b.events = append(b.events, ev)
		}
	}
	for _, region := range netmodel.Regions() {
		targets := perRegion[region]
		if len(targets) == 0 {
			continue
		}
		periodDays := 8
		if !region.Frontline() {
			periodDays = 45
		}
		for d := 0; d < days; d += periodDays {
			h := b.h(0xf0e, uint64(region), uint64(d))
			if h%100 < 35 {
				continue // quiet window
			}
			target := targets[h>>8%uint64(len(targets))]
			start := b.tl.Start().Add(time.Duration(d)*24*time.Hour +
				time.Duration(h>>16%uint64(periodDays*24))*time.Hour)
			// Durations span brief strikes (an hour) to multi-day damage;
			// the short tail is what finer probing intervals catch (§5.4).
			dur := time.Duration(1+h>>24%95) * time.Hour // 1h .. 4d
			ev := Event{
				Name: fmt.Sprintf("noise-%s-%d", region, d),
				From: start, To: start.Add(dur),
				ASNs: []netmodel.ASN{target},
			}
			switch h >> 32 % 10 {
			case 0, 1, 2:
				ev.Kind = EffectBGPDown
			case 3, 4, 5:
				ev.Kind = EffectSilent
			default:
				ev.Kind = EffectIPSDrop
				ev.Magnitude = 0.4 + 0.5*unitFloat(h>>40)
			}
			b.events = append(b.events, ev)
		}
	}
}
