package sim

import (
	"countrymon/internal/geodb"
	"countrymon/internal/netmodel"
	"countrymon/internal/par"
)

// Geolocation ground truth → IPInfo-like monthly snapshots.
//
// Noise model (§4.2's three scenarios, so the classifier has something real
// to mitigate):
//   - IP drift: a persistent sub-/24 share of some blocks geolocates to a
//     neighbouring region (BlockTraits.DriftFrac/DriftRegion).
//   - Block drift: with small per-month probability a slice of a block is
//     mislocated to a random region for that month only (also the source of
//     "temporal" AS presence).
//   - Regional churn: scripted MoveMonth relocations inside the country or
//     abroad (BlockTraits.Move*), plus Dynamic blocks of national ISPs that
//     hop regions every few months.

// transientDriftProb is the per-block per-month probability of a one-month
// mislocation.
const transientDriftProb = 0.012

// GeoSnapshot builds the geolocation database snapshot for a dense campaign
// month. Month −1 is the pre-war snapshot (2022-02-01) used by the churn
// analysis.
func (s *Scenario) GeoSnapshot(month int) *geodb.Snapshot {
	entries := make([]geodb.Entry, 0, len(s.blocks)+len(s.blocks)/4)
	for bi := range s.blocks {
		entries = s.blockGeoEntries(bi, month, entries)
	}
	// Leased foreign-delegated ASes still geolocate to Kherson.
	for _, as := range s.leased {
		for _, b := range as.Blocks() {
			entries = append(entries, geodb.Entry{
				Prefix:   netmodel.Prefix{Base: b.First(), Bits: 24},
				Country:  s.Country,
				Region:   as.HQ,
				RadiusKM: s.radiusKM(month, true),
			})
		}
	}
	return geodb.NewSnapshot(entries)
}

func (s *Scenario) blockGeoEntries(bi, month int, entries []geodb.Entry) []geodb.Entry {
	bt := &s.blocks[bi]
	bp := netmodel.Prefix{Base: bt.Block.First(), Bits: 24}

	country := s.Country
	region := bt.HomeRegion
	if bt.Dynamic {
		region = s.dynamicRegion(bi, month)
	}
	if bt.Moved(month) {
		if bt.MoveRegion.Valid() {
			region = bt.MoveRegion
		} else {
			country, region = bt.MoveCountry, netmodel.RegionNone
		}
	}

	radius := s.radiusKM(month, bt.Static && country == s.Country)
	if country != s.Country {
		radius = 1000
	}

	main := geodb.Entry{Prefix: bp, Country: country, Region: region, RadiusKM: radius}

	// Persistent IP drift: the top quarter/eighth of the block points to a
	// neighbouring region.
	if bt.DriftFrac > 0 && country == s.Country && bt.DriftRegion.Valid() {
		bits := driftBits(float64(bt.DriftFrac))
		sub := netmodel.Prefix{
			Base: bt.Block.First() + netmodel.Addr(256-(256>>(bits-24))),
			Bits: bits,
		}
		entries = append(entries, main, geodb.Entry{
			Prefix: sub, Country: s.Country, Region: bt.DriftRegion, RadiusKM: 500,
		})
		return entries
	}

	// Transient block drift: a /26 slice mislocates for one month.
	h := hash3(s.Cfg.Seed^0xd41f7, uint64(bt.Block), uint64(int64(month)+7))
	if country == s.Country && !bt.Static && unitFloat(h) < transientDriftProb {
		target := netmodel.Region(1 + h>>32%uint64(netmodel.NumRegions))
		if target != region {
			sub := netmodel.Prefix{Base: bt.Block.First() + 128, Bits: 26}
			entries = append(entries, main, geodb.Entry{
				Prefix: sub, Country: s.Country, Region: target, RadiusKM: 1000,
			})
			return entries
		}
	}
	return append(entries, main)
}

// dynamicRegion is where a national ISP's dynamic pool block geolocates in
// the given month: it hops to a fresh weighted-random region every ~3
// months.
func (s *Scenario) dynamicRegion(bi, month int) netmodel.Region {
	epoch := (month + 1) / 3
	h := hash3(s.Cfg.Seed^0xdba, uint64(bi), uint64(epoch))
	return weightedRegion(h)
}

// driftBits maps a drift fraction to a carve-out prefix length.
func driftBits(frac float64) uint8 {
	switch {
	case frac >= 0.4:
		return 25 // 128 addresses
	case frac >= 0.2:
		return 26 // 64
	default:
		return 27 // 32
	}
}

// radiusKM models IPInfo's confidence radius: regional/static networks are
// precise (50 km in 2022 degrading to 200 km by 2025); carrier pools sit at
// 500 km (§4.3).
func (s *Scenario) radiusKM(month int, static bool) uint32 {
	if month < 0 {
		month = 0
	}
	if static {
		r := 50 + 150*month/36
		if r > 200 {
			r = 200
		}
		return uint32(r)
	}
	return 500
}

// GeoDB builds all monthly snapshots (0..NumMonths-1). Months are
// independent, so they shard across the worker pool.
func (s *Scenario) GeoDB() *geodb.DB {
	return geodb.NewDB(par.Map(s.TL.NumMonths(), s.GeoSnapshot))
}

// IPv6ChurnByRegion returns the synthetic IPv6 address-count change per
// oblast between 2022-02 and 2025-02 (Fig 20): adoption grows nearly
// everywhere, most strongly in regions that started near zero.
func (s *Scenario) IPv6ChurnByRegion() map[netmodel.Region]float64 {
	out := make(map[netmodel.Region]float64, netmodel.NumRegions)
	for _, r := range netmodel.Regions() {
		var pct float64
		switch r {
		case netmodel.Rivne:
			pct = 150
		case netmodel.Ternopil:
			pct = 120
		case netmodel.Khmelnytskyi:
			pct = 95
		case netmodel.Luhansk, netmodel.Donetsk:
			pct = -8
		default:
			pct = 10 + 50*unitFloat(hash2(s.Cfg.Seed^0x6666, uint64(r)))
		}
		out[r] = pct
	}
	return out
}
