package sim

import (
	"time"

	"countrymon/internal/netmodel"
)

// Kherson ground truth, encoded from the paper's Table 5 and §5.2/§5.3.
// These 34 ASes are always modelled exactly, regardless of Config.Scale.

// khersonAS describes one Table-5 AS.
type khersonAS struct {
	ASN      netmodel.ASN
	Name     string
	HQ       netmodel.Region
	Foreign  bool
	Regional bool // classified regional for Kherson (first 13 rows)
	// RegionalBlocks is the "Reg." column: /24s regional to Kherson.
	RegionalBlocks int
	// ExtraBlocks are additional blocks elsewhere (for local non-regional
	// ASes whose spread keeps their AS-level share below the threshold).
	ExtraBlocks int
	// National links the entry to a nationally generated ISP: its Kherson
	// blocks are carved from the national pool rather than newly invented.
	National bool
	// CeasedBy2025 marks the seven ASes with no BGP prefixes in 2025.
	CeasedBy2025 bool
	// ActiveFrom delays the AS's appearance (Brok-X, Genicheskonline, NTT
	// blocks were announced during the measurement period).
	ActiveFrom time.Time
	// LeftBank marks providers headquartered on the occupied left bank
	// (RubinTV/Kakhovka, RostNet/Oleshky, M-Net/Henichesk): their RTTs stay
	// elevated after the liberation of the right bank.
	LeftBank bool
}

func khersonTable5() []khersonAS {
	kh := netmodel.Kherson
	return []khersonAS{
		// Regional ASes (13).
		{ASN: 49465, Name: "RubinTV", HQ: kh, Regional: true, RegionalBlocks: 16, LeftBank: true},
		{ASN: 56404, Name: "Norma4", HQ: kh, Regional: true, RegionalBlocks: 8},
		{ASN: 56359, Name: "RostNet", HQ: kh, Regional: true, RegionalBlocks: 5, CeasedBy2025: true, LeftBank: true},
		{ASN: 25482, Name: "Status", HQ: kh, Regional: true, RegionalBlocks: 3, ExtraBlocks: 1}, // 4th block regional in Kyiv
		{ASN: 15458, Name: "TLC-K", HQ: kh, Regional: true, RegionalBlocks: 2, CeasedBy2025: true},
		{ASN: 47598, Name: "Kherson Telecom", HQ: kh, Regional: true, RegionalBlocks: 2, CeasedBy2025: true},
		{ASN: 56446, Name: "OstrovNet", HQ: kh, Regional: true, RegionalBlocks: 2},
		{ASN: 25256, Name: "M-Net", HQ: kh, Regional: true, RegionalBlocks: 1, CeasedBy2025: true, LeftBank: true},
		{ASN: 34720, Name: "JSC-Chumak", HQ: netmodel.Kyiv, Regional: true, RegionalBlocks: 1, CeasedBy2025: true},
		{ASN: 42469, Name: "Askad", HQ: kh, Regional: true, RegionalBlocks: 1, CeasedBy2025: true},
		{ASN: 44737, Name: "Next", HQ: kh, Regional: true, RegionalBlocks: 1, CeasedBy2025: true},
		{ASN: 59500, Name: "LineVPS", HQ: kh, Regional: true, RegionalBlocks: 1},
		{ASN: 211171, Name: "Pluton", HQ: kh, Regional: true, RegionalBlocks: 1},

		// Non-regional ASes with regional blocks in Kherson (21).
		{ASN: 25229, Name: "Volia", HQ: netmodel.Kyiv, RegionalBlocks: 32, National: true},
		{ASN: 15895, Name: "Kyivstar", HQ: netmodel.Kyiv, RegionalBlocks: 10, National: true},
		{ASN: 6877, Name: "Ukrtelecom", HQ: netmodel.Kyiv, RegionalBlocks: 10, National: true},
		{ASN: 6849, Name: "Ukrtelecom", HQ: netmodel.Kyiv, RegionalBlocks: 6, National: true},
		{ASN: 6703, Name: "Alkar-As", HQ: netmodel.Kyiv, RegionalBlocks: 3, National: true},
		{ASN: 21151, Name: "Ukrcom", HQ: kh, RegionalBlocks: 3, ExtraBlocks: 8},
		{ASN: 6698, Name: "Virtualsystems", HQ: netmodel.Kyiv, RegionalBlocks: 2, National: true},
		{ASN: 30823, Name: "Aurologic", HQ: netmodel.RegionNone, Foreign: true, RegionalBlocks: 2, National: true},
		{ASN: 205172, Name: "Yanina", HQ: kh, RegionalBlocks: 2, ExtraBlocks: 4},
		{ASN: 39862, Name: "Digicom", HQ: kh, RegionalBlocks: 2, ExtraBlocks: 5},
		{ASN: 57498, Name: "Smart-M", HQ: kh, RegionalBlocks: 2, ExtraBlocks: 2},
		{ASN: 2914, Name: "NTT", HQ: netmodel.RegionNone, Foreign: true, RegionalBlocks: 1, ExtraBlocks: 1,
			ActiveFrom: time.Date(2023, 6, 1, 0, 0, 0, 0, time.UTC)},
		{ASN: 12883, Name: "Vega", HQ: netmodel.Kyiv, RegionalBlocks: 1, National: true},
		{ASN: 25082, Name: "Viner Telecom", HQ: kh, RegionalBlocks: 1, ExtraBlocks: 10},
		{ASN: 35213, Name: "CompNetUA", HQ: kh, RegionalBlocks: 1, ExtraBlocks: 10},
		{ASN: 49168, Name: "Brok-X", HQ: kh, RegionalBlocks: 1, ExtraBlocks: 1,
			ActiveFrom: time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC)},
		{ASN: 6846, Name: "Infocom", HQ: netmodel.Kyiv, RegionalBlocks: 1, National: true},
		{ASN: 12687, Name: "Uran Kiev", HQ: netmodel.Kyiv, RegionalBlocks: 1, National: true},
		{ASN: 45043, Name: "Viner Telecom", HQ: kh, RegionalBlocks: 1, ExtraBlocks: 3},
		{ASN: 197361, Name: "LLC AIT", HQ: kh, RegionalBlocks: 1},
		{ASN: 215654, Name: "Genicheskonline", HQ: kh, RegionalBlocks: 1,
			ActiveFrom: time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC), LeftBank: true},
	}
}

// KhersonRegionalASNs returns the 13 ground-truth regional ASes of Kherson.
func KhersonRegionalASNs() []netmodel.ASN {
	var out []netmodel.ASN
	for _, k := range khersonTable5() {
		if k.Regional {
			out = append(out, k.ASN)
		}
	}
	return out
}

// KhersonASNs returns all 34 Table-5 ASes.
func KhersonASNs() []netmodel.ASN {
	var out []netmodel.ASN
	for _, k := range khersonTable5() {
		out = append(out, k.ASN)
	}
	return out
}

// Named event identifiers used by experiments and examples.
const (
	EventMykolaivCable     = "mykolaiv-cable"
	EventRerouting         = "occupation-rerouting"
	EventKakhovkaDam       = "kakhovka-dam"
	EventStatusSeizure     = "status-seizure"
	EventLiberationRetreat = "liberation-retreat"
	EventNov28Disruption   = "nov28-multi-as"
)

// Key dates.
var (
	dateCableCut   = time.Date(2022, 4, 30, 12, 0, 0, 0, time.UTC)
	dateReroute    = time.Date(2022, 5, 30, 0, 0, 0, 0, time.UTC)
	dateLiberation = time.Date(2022, 11, 11, 0, 0, 0, 0, time.UTC)
	dateSeizure    = time.Date(2022, 5, 13, 6, 28, 0, 0, time.UTC)
	dateDam        = time.Date(2023, 6, 6, 0, 0, 0, 0, time.UTC)
)

// khersonEvents scripts §5.2/§5.3. statusBlocks are Status's four blocks
// (three Kherson + one Kyiv, in that order); volia/yanina etc. receive
// block-scoped outages on their Kherson-regional blocks.
func khersonEvents(statusBlocks []netmodel.BlockID, khersonBlocksOf map[netmodel.ASN][]netmodel.BlockID) []Event {
	day := 24 * time.Hour
	var evs []Event

	// April 30 2022: the last backbone cable into the oblast is damaged —
	// a three-day oblast-wide outage taking 24 ASes off BGP.
	cableASes := []netmodel.ASN{
		49465, 56404, 56359, 25482, 15458, 47598, 56446, 25256, 34720, 42469,
		44737, 59500, 211171, 21151, 205172, 39862, 57498, 25082, 35213,
		197361, 25229, 6703, 12883, 6877,
	}
	evs = append(evs, Event{
		Name: EventMykolaivCable, From: dateCableCut, To: dateCableCut.Add(3 * day),
		ASNs: cableASes, Kind: EffectBGPDown,
	})
	// Pluton and Alkar remain offline long after the repair.
	evs = append(evs, Event{
		Name: "pluton-extended", From: dateCableCut, To: time.Date(2023, 2, 1, 0, 0, 0, 0, time.UTC),
		ASNs: []netmodel.ASN{211171}, Kind: EffectBGPDown,
	})
	evs = append(evs, Event{
		Name: "alkar-extended", From: dateCableCut, To: time.Date(2022, 12, 15, 0, 0, 0, 0, time.UTC),
		Blocks: khersonBlocksOf[6703], Kind: EffectBGPDown,
	})

	// May 13 2022 06:28: Russian troops search Status's server rooms — an
	// IPS▲-only dip while BGP and FBS stay stable (Fig 13).
	evs = append(evs, Event{
		Name: EventStatusSeizure, From: dateSeizure, To: dateSeizure.Add(8 * time.Hour),
		ASNs: []netmodel.ASN{25482}, Kind: EffectIPSDrop, Magnitude: 0.45,
	})

	// May 30 – Nov 11 2022: occupied-area traffic rerouted via Russian
	// upstreams; RTTs rise for the regional providers (Fig 12).
	reroutedASes := []netmodel.ASN{49465, 56404, 56359, 25482, 15458, 47598, 56446, 25256, 21151, 197361}
	evs = append(evs, Event{
		Name: EventRerouting, From: dateReroute, To: dateLiberation,
		ASNs: reroutedASes, Kind: EffectReroute, RTTDeltaMS: 75,
	})
	// Left-bank providers keep the detour after the right bank's liberation.
	evs = append(evs, Event{
		Name: "leftbank-rtt", From: dateLiberation, To: time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC),
		ASNs: []netmodel.ASN{49465, 56359, 25256, 215654}, Kind: EffectReroute, RTTDeltaMS: 70,
	})
	// Several non-regional ASes' Kherson blocks were disconnected outright
	// during the occupation (Askad, Next, Volia, Yanina, Smart-M).
	evs = append(evs, Event{
		Name: "occupation-disconnects", From: dateReroute, To: dateLiberation.Add(10 * day),
		ASNs: []netmodel.ASN{42469, 44737}, Kind: EffectBGPDown,
	})
	for _, asn := range []netmodel.ASN{25229, 205172, 57498} {
		evs = append(evs, Event{
			Name: "occupation-disconnects-blocks", From: dateReroute, To: dateLiberation.Add(14 * day),
			Blocks: khersonBlocksOf[asn], Kind: EffectBGPDown,
		})
	}

	// Nov 11 2022: Russian retreat destroys infrastructure. Status's three
	// Kherson blocks go silent for ten days, then return on generator
	// power with day-only service for three weeks (Fig 14); its Kyiv
	// block is untouched.
	kh3 := statusBlocks[:3]
	evs = append(evs, Event{
		Name: EventLiberationRetreat, From: dateLiberation, To: dateLiberation.Add(10 * day),
		Blocks: kh3, Kind: EffectSilent,
	})
	evs = append(evs, Event{
		Name: "status-diurnal-recovery", From: dateLiberation.Add(10 * day), To: dateLiberation.Add(31 * day),
		Blocks: kh3, Kind: EffectDiurnalOnly,
	})
	// The retreat also briefly disrupts most regional providers.
	evs = append(evs, Event{
		Name: "retreat-disruption", From: dateLiberation.Add(-2 * day), To: dateLiberation.Add(4 * day),
		ASNs: []netmodel.ASN{56404, 15458, 47598, 56446, 59500, 21151, 39862}, Kind: EffectSilent,
	})

	// Nov 28 2022: a clearly visible multi-AS disruption (App. F).
	evs = append(evs, Event{
		Name: EventNov28Disruption,
		From: time.Date(2022, 11, 28, 4, 0, 0, 0, time.UTC),
		To:   time.Date(2022, 11, 29, 2, 0, 0, 0, time.UTC),
		ASNs: []netmodel.ASN{25482, 56404, 56446, 15458, 47598, 21151, 39862, 59500},
		Kind: EffectBGPDown,
	})

	// June 6 2023: the Kakhovka dam is destroyed. OstrovNet (port district,
	// Korabel Island) is flooded and takes three months to restore; Viner
	// Telecom, TLC-K and Digicom show FBS/IPS disruptions; Volia has a
	// one-day outage on June 14.
	evs = append(evs, Event{
		Name: EventKakhovkaDam, From: dateDam, To: time.Date(2023, 9, 5, 0, 0, 0, 0, time.UTC),
		ASNs: []netmodel.ASN{56446}, Kind: EffectBGPDown,
	})
	evs = append(evs, Event{
		Name: "dam-partial", From: dateDam, To: dateDam.Add(14 * day),
		ASNs: []netmodel.ASN{25082, 15458, 39862}, Kind: EffectIPSDrop, Magnitude: 0.6,
	})
	evs = append(evs, Event{
		Name: "dam-volia", From: time.Date(2023, 6, 14, 0, 0, 0, 0, time.UTC), To: time.Date(2023, 6, 15, 0, 0, 0, 0, time.UTC),
		Blocks: khersonBlocksOf[25229], Kind: EffectBGPDown,
	})
	return evs
}
