package sim

import "countrymon/internal/geodb"

// DefaultCountry is the country code a Spec defaults to when it names none:
// every scenario file and spec predating multi-country support describes
// Ukraine, so the zero value keeps them meaning what they always meant.
const DefaultCountry = geodb.CountryUA

// CountryModel is one country expressed as data: a code, a display name and
// the full Spec (address space, per-block ground truth, event script, power
// schedule, vantage outages) that Assemble turns into a runnable Scenario.
// The bundled Ukraine war generator produces one of these (Ukraine); other
// countries come from internal/scenario JSON compiled into a Spec, or from
// any other Spec-producing code. Nothing downstream of Assemble knows which
// country it is simulating except through the model's values.
type CountryModel struct {
	// Code is the ISO 3166-1 alpha-2 country code ("UA", "RO", ...), used
	// as the geolocation country of the model's address space and as the
	// campaign label in fleets, metrics and the serve API.
	Code string
	// Name is the display name ("Ukraine").
	Name string
	// Spec is the model's world as data.
	Spec Spec
}

// Build assembles the model into a Scenario. The model's Code wins over an
// unset Spec.Country, so a model is always built under its own flag.
func (m CountryModel) Build() (*Scenario, error) {
	spec := m.Spec
	if spec.Country == "" {
		spec.Country = m.Code
	}
	if spec.CountryName == "" {
		spec.CountryName = m.Name
	}
	return Assemble(spec)
}

// MustBuild is Build that panics on error (for static country models).
func (m CountryModel) MustBuild() *Scenario {
	sc, err := m.Build()
	if err != nil {
		panic(err)
	}
	return sc
}
