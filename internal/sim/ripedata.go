package sim

import (
	"sort"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/ripe"
)

// RIPE delegation ground truth (§3.2, Appendix B): the measurement input is
// a single pre-war snapshot; over the war, ~12% of Ukrainian ranges are
// re-registered under other country codes (a third of them to Russia) and
// ~7% new ranges appear.

// ripeSnapshotDate is the paper's input snapshot date.
var ripeSnapshotDate = time.Date(2021, 12, 14, 0, 0, 0, 0, time.UTC)

const (
	recodeFraction = 0.12
	addFraction    = 0.07
)

// RIPEBase returns the 2021-12-14 delegation file used as the scanner's
// target input: every home-country allocation chunk plus the leased foreign-delegated
// ranges (which is why the leased Kherson providers are missing from the
// target set, §4.3).
func (s *Scenario) RIPEBase() *ripe.File {
	f := &ripe.File{}
	for _, as := range s.Space.ASes() {
		for _, p := range as.Prefixes {
			f.Records = append(f.Records, ripe.Record{
				Registry: "ripencc", CC: s.Country, Type: "ipv4",
				Start: p.Base, Count: p.NumAddrs(),
				Date:   allocDate(s.Cfg.Seed, p.Base),
				Status: ripe.StatusAllocated,
			})
		}
	}
	for _, as := range s.leased {
		for _, p := range as.Prefixes {
			f.Records = append(f.Records, ripe.Record{
				Registry: "ripencc", CC: "CZ", Type: "ipv4",
				Start: p.Base, Count: p.NumAddrs(),
				Date:   allocDate(s.Cfg.Seed, p.Base),
				Status: ripe.StatusAssigned,
			})
		}
	}
	sort.Slice(f.Records, func(i, j int) bool { return f.Records[i].Start < f.Records[j].Start })
	return f
}

// allocDate spreads allocation dates over 1996..2021 with the bulk in the
// 2004-2012 growth years (Fig 18's shape).
func allocDate(seed uint64, base netmodel.Addr) time.Time {
	h := hash2(seed^0x41fe, uint64(base))
	u := unitFloat(h)
	var year int
	switch {
	case u < 0.10:
		year = 1996 + int(h>>8%8) // 1996..2003
	case u < 0.75:
		year = 2004 + int(h>>8%9) // 2004..2012
	default:
		year = 2013 + int(h>>8%9) // 2013..2021
	}
	return time.Date(year, time.Month(1+h>>16%12), 1+int(h>>24%28), 0, 0, 0, 0, time.UTC)
}

// recodeDest picks the destination country for a re-registered range: ~31%
// RU, 13.5% US, 11% PL, 9% LV, the rest other European codes (App. B).
func recodeDest(h uint64) string {
	switch v := h % 200; {
	case v < 62:
		return "RU"
	case v < 89:
		return "US"
	case v < 111:
		return "PL"
	case v < 129:
		return "LV"
	case v < 160:
		return "NL"
	case v < 185:
		return "DE"
	default:
		return "RO"
	}
}

// RIPESnapshot returns the delegation file as of dense campaign month m
// (m < 0 returns the base snapshot): re-registrations and additions applied
// up to that month.
func (s *Scenario) RIPESnapshot(month int) *ripe.File {
	base := s.RIPEBase()
	if month < 0 {
		return base
	}
	months := s.TL.NumMonths()
	out := &ripe.File{}
	for i, rec := range base.Records {
		if rec.CC == s.Country {
			h := hash3(s.Cfg.Seed^0x5ec0, uint64(rec.Start), uint64(i))
			if unitFloat(h) < recodeFraction {
				at := int(h >> 16 % uint64(months))
				if month >= at {
					rec.CC = recodeDest(h >> 32)
				}
			}
		}
		out.Records = append(out.Records, rec)
	}
	// Additions: new home-country ranges appearing over the campaign, carved from a
	// reserved pool.
	added := int(float64(len(base.Records)) * addFraction)
	for i := 0; i < added; i++ {
		h := hash2(s.Cfg.Seed^0xadd, uint64(i))
		at := int(h % uint64(months))
		if month < at {
			continue
		}
		start := netmodel.MustParseAddr("45.128.0.0") + netmodel.Addr(i*1024)
		out.Records = append(out.Records, ripe.Record{
			Registry: "ripencc", CC: s.Country, Type: "ipv4",
			Start: start, Count: 1024,
			Date:   s.TL.MonthStart(at),
			Status: ripe.StatusAllocated,
		})
	}
	return out
}

// RIPEYearlySeries returns total addresses delegated to the scenario's
// country at the start of
// each year in [fromYear, toYear], reconstructing Fig 18's curve: history
// before the campaign from allocation dates, afterwards from snapshots.
func (s *Scenario) RIPEYearlySeries(fromYear, toYear int) ([]int, []uint64) {
	base := s.RIPEBase()
	var years []int
	var addrs []uint64
	for y := fromYear; y <= toYear; y++ {
		cut := time.Date(y, 1, 1, 0, 0, 0, 0, time.UTC)
		var total uint64
		if cut.Before(ripeSnapshotDate) {
			for _, rec := range base.Records {
				if rec.CC == s.Country && rec.Date.Before(cut) {
					total += rec.Count
				}
			}
		} else {
			snap := s.RIPESnapshot(s.TL.MonthIndex(cut))
			total = snap.CountryAddrCount(s.Country)
		}
		years = append(years, y)
		addrs = append(addrs, total)
	}
	return years, addrs
}
