package sim

import "sync"

// Deterministic hashing: every stochastic decision in the simulator is a
// pure function of (seed, identifiers), so scenarios are exactly
// reproducible and state can be evaluated at any (block, time) without
// history.

func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hash2(a, b uint64) uint64 { return mix64(mix64(a) ^ b) }

func hash3(a, b, c uint64) uint64 { return mix64(hash2(a, b) ^ mix64(c)) }

// unitFloat maps a hash to [0, 1).
func unitFloat(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// liveOrderCache lazily computes each block's host liveness ranking: a
// permutation of 0..255 per block, derived from the scenario seed. Rank 0 is
// the "most alive" host; host h responds in a round iff rank(h) < count.
// Reads vastly outnumber builds (every probe consults it, including the
// parallel Trinocular fan-out), so lookups take only a read lock.
type liveOrderCache struct {
	mu    sync.RWMutex
	seed  uint64
	ranks map[netmodel32]*[256]uint8
}

// netmodel32 avoids importing netmodel here just for the key type.
type netmodel32 = uint32

func (c *liveOrderCache) rank(block uint32, host uint8) uint8 {
	c.mu.RLock()
	r, ok := c.ranks[block]
	c.mu.RUnlock()
	if ok {
		return r[host]
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ranks == nil {
		c.ranks = make(map[uint32]*[256]uint8)
	}
	r, ok = c.ranks[block]
	if !ok {
		r = c.buildLocked(block)
	}
	return r[host]
}

func (c *liveOrderCache) buildLocked(block uint32) *[256]uint8 {
	// Sort hosts by hash; equal hashes are impossible to matter (ties are
	// broken by host number for determinism).
	type hk struct {
		h    uint64
		host uint8
	}
	var keys [256]hk
	for i := 0; i < 256; i++ {
		keys[i] = hk{h: hash3(c.seed, uint64(block), uint64(i)), host: uint8(i)}
	}
	// Insertion sort on 256 elements is fine and allocation-free.
	for i := 1; i < 256; i++ {
		k := keys[i]
		j := i - 1
		for j >= 0 && (keys[j].h > k.h || (keys[j].h == k.h && keys[j].host > k.host)) {
			keys[j+1] = keys[j]
			j--
		}
		keys[j+1] = k
	}
	var ranks [256]uint8
	for pos := 0; pos < 256; pos++ {
		ranks[keys[pos].host] = uint8(pos)
	}
	r := &ranks
	c.ranks[block] = r
	return r
}
