// Package sim is the ground-truth war simulator that substitutes for three
// years of live measurements of Ukraine (see DESIGN.md §2). It models the
// country's address space (ASes, /24 blocks, regions), scripts the conflict's
// events — the Mykolaiv cable cut, occupation-era rerouting through Russian
// upstreams, the Kakhovka dam flood, equipment seizures, power-grid strikes,
// address churn — and exposes the resulting state three ways:
//
//   - a packet-level Responder for internal/simnet, so the real scanner
//     code path can be exercised end to end;
//   - a fast statistical generator that fills a dataset.Store with the same
//     per-block, per-round observations for full-campaign analyses;
//   - generators for every external dataset the pipeline consumes (monthly
//     geolocation snapshots, RIPE delegations, BGP visibility, power data).
//
// Responsiveness follows a nested-set model: each /24 has a fixed "liveness
// order" of its 256 hosts, and host k answers a probe exactly when the
// block's current responsive count exceeds k's rank. This keeps the packet
// path and the statistical path bit-for-bit consistent and makes the monthly
// ever-active count E(b) equal the month's maximum per-round count, while
// preserving everything the outage signals consume.
package sim

import (
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/power"
	"countrymon/internal/timeline"
)

// Config controls scenario construction.
type Config struct {
	// Seed makes the whole scenario deterministic.
	Seed uint64
	// Scale is the fraction of the paper-scale address space to model
	// outside Kherson (Kherson's 34 ASes from Table 5 are always exact).
	// 1.0 ≈ 2,000 ASes / 35K /24 blocks; the default 0.12 keeps the full
	// three-year pipeline tractable on one core.
	Scale float64
	// Interval is the probing interval (the paper used 2h; experiments
	// default to 6h to bound memory/time at the default scale).
	Interval time.Duration
	// Start and End bound the campaign.
	Start, End time.Time
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.12
	}
	if c.Interval == 0 {
		c.Interval = 6 * time.Hour
	}
	if c.Start.IsZero() {
		c.Start = timeline.DefaultStart
	}
	if c.End.IsZero() {
		c.End = timeline.DefaultEnd
	}
	return c
}

// ASTraits is simulation ground truth for one AS.
type ASTraits struct {
	AS *netmodel.AS
	// National marks ISPs operating across many regions (Kyivstar,
	// Ukrtelecom, ...) whose dynamic pools churn between oblasts.
	National bool
	// ActiveFrom/ActiveTo bound the AS's BGP presence; zero values mean
	// the whole campaign. Seven Kherson ASes cease announcing before 2025
	// (§4.3); a few appear only later.
	ActiveFrom, ActiveTo time.Time
}

// Active reports whether the AS announces prefixes at the given time.
func (a *ASTraits) Active(at time.Time) bool {
	if !a.ActiveFrom.IsZero() && at.Before(a.ActiveFrom) {
		return false
	}
	if !a.ActiveTo.IsZero() && !at.Before(a.ActiveTo) {
		return false
	}
	return true
}

// BlockTraits is simulation ground truth for one /24 block.
type BlockTraits struct {
	Block netmodel.BlockID
	ASN   netmodel.ASN
	// HomeRegion is where the block's users are at campaign start.
	HomeRegion netmodel.Region
	// Density is the number of ever-active hosts at campaign start (the
	// size of the block's live population, ≤ 256).
	Density uint8
	// RespRate is the long-term fraction of the live population answering
	// a given probe round under normal conditions.
	RespRate float32
	// DeclineTo is the activity multiplier reached by campaign end
	// (subscriber loss; drives the −18% overall response decline).
	DeclineTo float32
	// Diurnal marks blocks with visible day/night cycles.
	Diurnal bool
	// Static marks precisely geolocated blocks (data centres, offices):
	// low radius, no drift.
	Static bool
	// Dynamic marks national-ISP pool blocks that hop between regions
	// every few months (the churn §4.1 attributes to Ukrtelecom, Kyivstar,
	// Vodafone and Vega).
	Dynamic bool
	// GridSensitive marks blocks whose equipment dies with the power grid
	// (no backup); BackupHours is how long others bridge an outage.
	GridSensitive bool
	BackupHours   float32

	// MoveMonth, when ≥ 0, is the campaign month at which the block's
	// geolocation moves: to MoveRegion (intra-Ukraine churn) or abroad to
	// MoveCountry with MoveASN taking over announcements (e.g. Volia
	// Kherson blocks reappearing under Amazon).
	MoveMonth   int16
	MoveRegion  netmodel.Region
	MoveCountry string
	MoveASN     netmodel.ASN

	// DriftFrac is the persistent fraction of the block's addresses that
	// geolocate to DriftRegion instead of home (IP drift, §4.2).
	DriftFrac   float32
	DriftRegion netmodel.Region
}

// Moved reports whether the block has moved by (dense) month m, and where.
func (b *BlockTraits) Moved(m int) bool { return b.MoveMonth >= 0 && m >= int(b.MoveMonth) }

// EffectKind enumerates what a scripted event does to its scope.
type EffectKind uint8

const (
	// EffectBGPDown withdraws prefixes: no routes, no responses.
	EffectBGPDown EffectKind = iota
	// EffectSilent keeps routes up but hosts stop responding (kinetic
	// damage behind an intact announcement).
	EffectSilent
	// EffectIPSDrop multiplies responsiveness by (1 − Magnitude), leaving
	// blocks active: the partial outages only the IPS▲ signal sees.
	EffectIPSDrop
	// EffectReroute adds RTTDeltaMS to round-trip times and marks paths as
	// crossing a Russian upstream.
	EffectReroute
	// EffectDiurnalOnly limits responsiveness to daylight hours (the
	// post-liberation generator-powered recovery, Fig 14).
	EffectDiurnalOnly
)

// Event is one scripted disruption. A block is affected when it matches any
// populated scope dimension (AS list, home-region list, or explicit blocks).
type Event struct {
	Name       string
	From, To   time.Time
	ASNs       []netmodel.ASN
	Regions    []netmodel.Region
	Blocks     []netmodel.BlockID
	Kind       EffectKind
	Magnitude  float64 // for EffectIPSDrop: fraction of responsiveness lost
	RTTDeltaMS int     // for EffectReroute
}

// Scenario is a fully built simulation. It is immutable after Build and
// safe for concurrent readers.
type Scenario struct {
	Cfg     Config
	TL      *timeline.Timeline
	Space   *netmodel.Space
	Power   *power.Schedule
	Missing []bool // vantage outages per round

	// Country is the ISO code the scenario's address space geolocates to
	// (the country model's Code; DefaultCountry when the spec named none),
	// and CountryName its display name. Everything country-specific in the
	// scenario — geo snapshots, RIPE delegations, leased-space handling —
	// keys off this value.
	Country     string
	CountryName string

	blocks   []BlockTraits // aligned with Space.Blocks()
	asTraits map[netmodel.ASN]*ASTraits
	// blockAS[bi] is the AS traits of block bi (nil if unknown), hoisted out
	// of the per-round state evaluation.
	blockAS []*ASTraits
	events  []Event

	// eventBlocks[e] lists the block indices event e affects; eventRounds
	// the half-open round interval.
	eventBlocks [][]int32
	eventRounds [][2]int32

	// blockEvents[bi] lists indices into events affecting block bi.
	blockEvents [][]int16

	// liveOrder caches per-block host liveness ranks (lazily built).
	liveOrder liveOrderCache

	// leased are ASes present in Kherson but delegated to a foreign
	// country (the Stream Kherson / Online Net limitation, §4.3): they are
	// geolocated to Kherson yet absent from the UA target set.
	leased []*netmodel.AS
}

// Blocks returns per-block ground truth aligned with Space.Blocks().
func (s *Scenario) Blocks() []BlockTraits { return s.blocks }

// BlockTraitsAt returns ground truth for block index bi.
func (s *Scenario) BlockTraitsAt(bi int) *BlockTraits { return &s.blocks[bi] }

// ASTraitsOf returns ground truth for an AS (nil if unknown).
func (s *Scenario) ASTraitsOf(asn netmodel.ASN) *ASTraits { return s.asTraits[asn] }

// Events returns the scripted events.
func (s *Scenario) Events() []Event { return s.events }

// LeasedASes returns the foreign-delegated Kherson ASes (not probed).
func (s *Scenario) LeasedASes() []*netmodel.AS { return s.leased }

// FindEvent returns the first scripted event whose name matches.
func (s *Scenario) FindEvent(name string) (Event, bool) {
	for _, e := range s.events {
		if e.Name == name {
			return e, true
		}
	}
	return Event{}, false
}
