package sim

import (
	"sync"
	"testing"
	"time"

	"countrymon/internal/netmodel"
)

var (
	testOnce sync.Once
	testSc   *Scenario
)

// testScenario builds one small-but-complete scenario shared by all tests.
func testScenario(t *testing.T) *Scenario {
	t.Helper()
	testOnce.Do(func() {
		testSc = MustBuild(Config{Seed: 42, Scale: 0.05})
	})
	return testSc
}

func TestBuildStructure(t *testing.T) {
	s := testScenario(t)
	if s.Space.NumASes() < 100 {
		t.Fatalf("ASes = %d, too few", s.Space.NumASes())
	}
	if s.Space.NumBlocks() < 1200 {
		t.Fatalf("blocks = %d, too few", s.Space.NumBlocks())
	}
	// All 34 Table-5 Kherson ASes exist.
	for _, asn := range KhersonASNs() {
		if s.Space.Lookup(asn) == nil {
			t.Errorf("Kherson %v missing", asn)
		}
	}
	// Status has exactly 4 blocks: 3 home in Kherson, 1 in Kyiv.
	status := s.Space.Lookup(25482)
	if got := len(status.Blocks()); got != 4 {
		t.Fatalf("Status blocks = %d, want 4", got)
	}
	kh, kyiv := 0, 0
	for _, blk := range status.Blocks() {
		bt := s.BlockTraitsAt(s.Space.BlockIndex(blk))
		switch bt.HomeRegion {
		case netmodel.Kherson:
			kh++
		case netmodel.Kyiv:
			kyiv++
		}
	}
	if kh != 3 || kyiv != 1 {
		t.Errorf("Status regions = %d Kherson / %d Kyiv, want 3/1", kh, kyiv)
	}
	// Leased ASes exist but are outside the probed space.
	if len(s.LeasedASes()) < 2 {
		t.Error("leased ASes missing")
	}
	for _, as := range s.LeasedASes() {
		if s.Space.Lookup(as.ASN) != nil {
			t.Errorf("leased %v must not be in the UA space", as.ASN)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := MustBuild(Config{Seed: 7, Scale: 0.02})
	b := MustBuild(Config{Seed: 7, Scale: 0.02})
	if a.Space.NumBlocks() != b.Space.NumBlocks() {
		t.Fatal("block counts differ across identical builds")
	}
	at := a.TL.Time(500)
	for bi := 0; bi < a.Space.NumBlocks(); bi += 97 {
		sa, sb := a.BlockStateAt(bi, at), b.BlockStateAt(bi, at)
		if sa != sb {
			t.Fatalf("state differs at block %d: %+v vs %+v", bi, sa, sb)
		}
	}
	c := MustBuild(Config{Seed: 8, Scale: 0.02})
	diff := 0
	for bi := 0; bi < min(a.Space.NumBlocks(), c.Space.NumBlocks()); bi += 11 {
		if a.BlockStateAt(bi, at) != c.BlockStateAt(bi, at) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical states")
	}
}

func blockOf(t *testing.T, s *Scenario, asn netmodel.ASN, region netmodel.Region) int {
	t.Helper()
	as := s.Space.Lookup(asn)
	if as == nil {
		t.Fatalf("%v missing", asn)
	}
	for _, blk := range as.Blocks() {
		bi := s.Space.BlockIndex(blk)
		if s.BlockTraitsAt(bi).HomeRegion == region {
			return bi
		}
	}
	t.Fatalf("%v has no block in %v", asn, region)
	return -1
}

func TestCableCutEvent(t *testing.T) {
	s := testScenario(t)
	bi := blockOf(t, s, 56404, netmodel.Kherson) // Norma4
	before := s.BlockStateAt(bi, time.Date(2022, 4, 28, 12, 0, 0, 0, time.UTC))
	during := s.BlockStateAt(bi, time.Date(2022, 5, 1, 12, 0, 0, 0, time.UTC))
	after := s.BlockStateAt(bi, time.Date(2022, 5, 10, 12, 0, 0, 0, time.UTC))
	if !before.Routed || before.Resp == 0 {
		t.Errorf("before cable cut: %+v", before)
	}
	if during.Routed || during.Resp != 0 {
		t.Errorf("during cable cut Norma4 should be BGP-down: %+v", during)
	}
	if !after.Routed {
		t.Errorf("after repair: %+v", after)
	}
}

func TestSeizureIPSDip(t *testing.T) {
	s := testScenario(t)
	bi := blockOf(t, s, 25482, netmodel.Kherson)
	before := s.BlockStateAt(bi, time.Date(2022, 5, 12, 8, 0, 0, 0, time.UTC))
	during := s.BlockStateAt(bi, time.Date(2022, 5, 13, 8, 0, 0, 0, time.UTC))
	if !during.Routed {
		t.Error("seizure must not affect BGP")
	}
	if during.Resp >= before.Resp {
		t.Errorf("seizure IPS dip missing: before=%d during=%d", before.Resp, during.Resp)
	}
	if during.Resp == 0 {
		t.Error("seizure is a partial outage, not a full one")
	}
}

func TestReroutingRTT(t *testing.T) {
	s := testScenario(t)
	bi := blockOf(t, s, 56404, netmodel.Kherson)
	before := s.BlockStateAt(bi, time.Date(2022, 4, 10, 12, 0, 0, 0, time.UTC))
	during := s.BlockStateAt(bi, time.Date(2022, 8, 10, 12, 0, 0, 0, time.UTC))
	after := s.BlockStateAt(bi, time.Date(2023, 3, 10, 12, 0, 0, 0, time.UTC))
	if int(during.RTTMS) < int(before.RTTMS)+50 {
		t.Errorf("occupation RTT: before=%d during=%d", before.RTTMS, during.RTTMS)
	}
	if !during.Rerouted {
		t.Error("Rerouted flag missing during occupation")
	}
	if int(after.RTTMS) > int(before.RTTMS)+20 {
		t.Errorf("Norma4 RTT should normalize after liberation: %d", after.RTTMS)
	}
	// Left-bank RubinTV keeps elevated RTTs after liberation.
	ri := blockOf(t, s, 49465, netmodel.Kherson)
	rAfter := s.BlockStateAt(ri, time.Date(2023, 3, 10, 12, 0, 0, 0, time.UTC))
	if int(rAfter.RTTMS) < int(before.RTTMS)+40 {
		t.Errorf("RubinTV left-bank RTT should stay high: %d", rAfter.RTTMS)
	}
}

func TestKakhovkaDam(t *testing.T) {
	s := testScenario(t)
	bi := blockOf(t, s, 56446, netmodel.Kherson) // OstrovNet
	before := s.BlockStateAt(bi, time.Date(2023, 6, 1, 12, 0, 0, 0, time.UTC))
	during := s.BlockStateAt(bi, time.Date(2023, 7, 15, 12, 0, 0, 0, time.UTC))
	after := s.BlockStateAt(bi, time.Date(2023, 9, 20, 12, 0, 0, 0, time.UTC))
	if !before.Routed {
		t.Errorf("OstrovNet should be up before the dam: %+v", before)
	}
	if during.Routed {
		t.Error("OstrovNet should be flooded offline in July 2023")
	}
	if !after.Routed {
		t.Error("OstrovNet should restore by late September 2023")
	}
}

func TestLiberationStatusBlocks(t *testing.T) {
	s := testScenario(t)
	status := s.Space.Lookup(25482)
	var khBlocks, kyivBlocks []int
	for _, blk := range status.Blocks() {
		bi := s.Space.BlockIndex(blk)
		if s.BlockTraitsAt(bi).HomeRegion == netmodel.Kherson {
			khBlocks = append(khBlocks, bi)
		} else {
			kyivBlocks = append(kyivBlocks, bi)
		}
	}
	gap := time.Date(2022, 11, 15, 12, 0, 0, 0, time.UTC)
	for _, bi := range khBlocks {
		st := s.BlockStateAt(bi, gap)
		if st.Resp != 0 {
			t.Errorf("Kherson Status block responding during the 10-day gap: %+v", st)
		}
		if !st.Routed {
			t.Error("retreat damage is Silent (routes stay up)")
		}
	}
	for _, bi := range kyivBlocks {
		if st := s.BlockStateAt(bi, gap); st.Resp == 0 {
			t.Error("Kyiv Status block must stay responsive through the retreat")
		}
	}
	// Diurnal-only recovery: day up, night down.
	dayT := time.Date(2022, 11, 25, 10, 0, 0, 0, time.UTC)    // 12:00 local
	nightT := time.Date(2022, 11, 25, 23, 30, 0, 0, time.UTC) // 01:30 local
	for _, bi := range khBlocks {
		if st := s.BlockStateAt(bi, dayT); st.Resp == 0 {
			t.Error("diurnal recovery: day service missing")
		}
		if st := s.BlockStateAt(bi, nightT); st.Resp != 0 {
			t.Error("diurnal recovery: night should be silent")
		}
	}
}

func TestCeasedASes(t *testing.T) {
	s := testScenario(t)
	end := time.Date(2025, 2, 1, 12, 0, 0, 0, time.UTC)
	ceased := []netmodel.ASN{15458, 25256, 56359, 34720, 47598, 42469, 44737}
	for _, asn := range ceased {
		tr := s.ASTraitsOf(asn)
		if tr == nil || tr.ActiveTo.IsZero() {
			t.Errorf("%v should have an end date", asn)
			continue
		}
		if tr.Active(end) {
			t.Errorf("%v should be inactive by 2025", asn)
		}
		if !tr.Active(time.Date(2022, 4, 1, 0, 0, 0, 0, time.UTC)) {
			t.Errorf("%v should be active early in the war", asn)
		}
	}
	// Late arrivals.
	for _, asn := range []netmodel.ASN{49168, 215654} {
		tr := s.ASTraitsOf(asn)
		if tr.Active(time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)) {
			t.Errorf("%v should not be active in mid-2022", asn)
		}
		if !tr.Active(time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)) {
			t.Errorf("%v should be active by mid-2024", asn)
		}
	}
}

func TestPowerCoupling(t *testing.T) {
	s := testScenario(t)
	// Find a grid-sensitive non-frontline block and a power-out hour in
	// winter 2022/23.
	for bi := range s.Blocks() {
		bt := s.BlockTraitsAt(bi)
		if bt.HomeRegion != netmodel.Lviv || !bt.GridSensitive || bt.Density < 50 || bt.Dynamic || bt.MoveMonth >= 0 {
			continue
		}
		day := time.Date(2022, 12, 20, 0, 0, 0, 0, time.UTC)
		var outAt, onAt time.Time
		for h := 0; h < 24; h++ {
			at := day.Add(time.Duration(h) * time.Hour)
			if out, since := s.Power.OutSince(netmodel.Lviv, at); out && since > 2 {
				outAt = at
			} else if !out {
				onAt = at
			}
		}
		if outAt.IsZero() || onAt.IsZero() {
			continue
		}
		stOut := s.BlockStateAt(bi, outAt)
		stOn := s.BlockStateAt(bi, onAt)
		if stOut.Resp >= stOn.Resp {
			t.Errorf("power outage did not dent responsiveness: out=%d on=%d", stOut.Resp, stOn.Resp)
		}
		if !stOut.Routed {
			t.Error("power outage must not kill BGP for grid-sensitive edge blocks")
		}
		return
	}
	t.Skip("no suitable Lviv block found at this scale")
}

func TestChurnMoves(t *testing.T) {
	s := testScenario(t)
	// Luhansk must lose most blocks; Chernihiv should gain inbound movers.
	luhanskMoved, luhanskTotal := 0, 0
	inboundChernihiv := 0
	for bi := range s.Blocks() {
		bt := s.BlockTraitsAt(bi)
		if bt.HomeRegion == netmodel.Luhansk && !bt.Dynamic {
			luhanskTotal++
			if bt.MoveMonth >= 0 {
				luhanskMoved++
			}
		}
		if bt.MoveRegion == netmodel.Chernihiv && bt.MoveMonth >= 0 {
			inboundChernihiv++
		}
	}
	if luhanskTotal == 0 {
		t.Fatal("no Luhansk blocks modelled")
	}
	frac := float64(luhanskMoved) / float64(luhanskTotal)
	if frac < 0.4 {
		t.Errorf("Luhansk move fraction = %.2f, want ≈0.67", frac)
	}
	if inboundChernihiv == 0 {
		t.Error("no churn into Chernihiv")
	}
	// Volia Kherson blocks that moved abroad go to Amazon.
	amazon := 0
	for bi := range s.Blocks() {
		bt := s.BlockTraitsAt(bi)
		if bt.ASN == 25229 && bt.MoveASN == 16509 {
			amazon++
		}
	}
	if amazon == 0 {
		t.Error("no Volia→Amazon reassignments")
	}
}

func TestFrontlineNoiseEvents(t *testing.T) {
	s := testScenario(t)
	front, back := 0, 0
	for _, ev := range s.Events() {
		if len(ev.Regions) > 0 {
			continue
		}
		if len(ev.ASNs) == 1 {
			as := s.Space.Lookup(ev.ASNs[0])
			if as == nil {
				continue
			}
			if as.HQ.Frontline() {
				front++
			} else if as.HQ.Valid() {
				back++
			}
		}
	}
	if front < back {
		t.Errorf("frontline noise (%d) should dominate non-frontline (%d)", front, back)
	}
	if front < 50 {
		t.Errorf("too few frontline noise events: %d", front)
	}
}
