package sim

import (
	"sort"
	"time"

	"countrymon/internal/dataset"
	"countrymon/internal/netmodel"
	"countrymon/internal/par"
	"countrymon/internal/simnet"
)

// BlockState is a block's ground-truth condition at one instant.
type BlockState struct {
	// Routed reports BGP coverage.
	Routed bool
	// Resp is the number of hosts answering probes right now.
	Resp int
	// RTTMS is the mean round-trip time to responding hosts.
	RTTMS uint16
	// Rerouted reports whether the BGP path crosses a Russian upstream.
	Rerouted bool
}

// BlockStateAt evaluates ground truth for block index bi at time at.
func (s *Scenario) BlockStateAt(bi int, at time.Time) BlockState {
	round := s.TL.Round(at)
	return s.stateAt(bi, round, at)
}

func (s *Scenario) stateAt(bi int, round int, at time.Time) BlockState {
	bt := &s.blocks[bi]
	as := s.blockAS[bi]

	st := BlockState{Routed: as == nil || as.Active(at)}
	month := s.TL.MonthOfRound(round)

	// Address-churn decline: activity interpolates from 1 to DeclineTo.
	frac := float64(round) / float64(s.TL.NumRounds()-1)
	mult := 1 + (float64(bt.DeclineTo)-1)*frac

	movedAbroad := bt.Moved(month) && !bt.MoveRegion.Valid()
	region := bt.HomeRegion
	if bt.Moved(month) && bt.MoveRegion.Valid() {
		region = bt.MoveRegion
	}
	if movedAbroad && bt.MoveASN != 0 {
		// Announced by the foreign acquirer (e.g. Amazon) from the move on.
		st.Routed = true
	}

	resp := float64(bt.Density) * mult * float64(bt.RespRate)
	silent := false
	rttDelta := 0
	diurnalOnly := false

	// Dynamic pools reallocate: every couple of weeks roughly half of a
	// national ISP's dynamic blocks go quiet while the displaced users
	// appear in the other half — total responsiveness is conserved, but
	// the set of active blocks shifts. This is the false-positive source
	// ISP availability sensing exists to filter (§3.1, Baltra et al.).
	if bt.Dynamic {
		epoch := int(at.Sub(s.TL.Start()) / (14 * 24 * time.Hour))
		// The fraction of the ISP's dynamic pool in use varies per epoch
		// (consolidation and renumbering): the count of active blocks
		// swings while total responsiveness is conserved — exactly the
		// block-level false positive availability sensing filters.
		pa := 0.10 + 0.80*unitFloat(hash3(s.Cfg.Seed^0x90a1, uint64(bt.ASN), uint64(epoch)))
		if unitFloat(hash3(s.Cfg.Seed^0x2ea1, uint64(bi), uint64(epoch))) < pa {
			m := 0.7 / pa
			if m > 2.3 {
				m = 2.3
			}
			resp *= m
		} else {
			resp *= 0.02
		}
	}

	// Electricity: regional grid failures suppress responsiveness once the
	// outage outlasts the block's backup capacity. Blocks moved abroad are
	// off the Ukrainian grid. In frontline oblasts the grid is damaged
	// kinetically rather than shed on the published rolling schedule, so
	// the scheduled windows only partially apply there — which is why
	// frontline Internet outages correlate weakly with the reported power
	// outages (§5.1: r = 0.298 vs 0.725).
	if !movedAbroad && region.Valid() {
		applies := true
		if region.Frontline() {
			day := at.YearDay() + at.Year()*400
			applies = hash3(s.Cfg.Seed^0xf18e, uint64(region), uint64(day))%100 < 35
		}
		if out, since := s.Power.OutSince(region, at); applies && out && since > float64(bt.BackupHours) {
			if bt.GridSensitive {
				resp *= 0.05
			} else {
				resp *= 0.70
			}
		}
	}

	// Scripted events.
	for _, ei := range s.blockEvents[bi] {
		ev := &s.events[ei]
		if at.Before(ev.From) || !at.Before(ev.To) {
			continue
		}
		switch ev.Kind {
		case EffectBGPDown:
			st.Routed = false
		case EffectSilent:
			silent = true
		case EffectIPSDrop:
			resp *= 1 - ev.Magnitude
		case EffectReroute:
			rttDelta += ev.RTTDeltaMS
			st.Rerouted = true
		case EffectDiurnalOnly:
			diurnalOnly = true
		}
	}

	// Day/night cycles (local time ≈ UTC+2..+3; use +2).
	hour := (at.Hour() + 2) % 24
	day := hour >= 7 && hour < 22
	if bt.Diurnal {
		if day {
			resp *= 1.0
		} else {
			resp *= 0.72
		}
	}
	if diurnalOnly {
		if day {
			resp *= 0.8
		} else {
			resp = 0
		}
	}

	if silent || !st.Routed {
		resp = 0
	}

	// Deterministic rounding: the fractional part becomes an extra host for
	// a hash-chosen subset of rounds, so means are preserved.
	if resp > 0 {
		w := int(resp)
		fracPart := resp - float64(w)
		if unitFloat(hash3(s.Cfg.Seed^0x5eed, uint64(bi), uint64(round))) < fracPart {
			w++
		}
		if w > int(bt.Density) {
			w = int(bt.Density)
		}
		if w > 255 {
			w = 255
		}
		st.Resp = w
	}

	// Round-trip time: base per region plus rerouting detours and jitter.
	base := 32 + int(hash2(uint64(s.Cfg.Seed), uint64(region))%22)
	if movedAbroad {
		base = 105 // transatlantic cloud
	}
	jitter := int(hash3(s.Cfg.Seed^0x177, uint64(bi), uint64(round))%9) - 4
	rtt := base + rttDelta + jitter
	if rtt < 1 {
		rtt = 1
	}
	st.RTTMS = uint16(rtt)
	return st
}

// CurrentRegion returns where the block's addresses geolocate in the given
// campaign month (RegionNone when abroad).
func (s *Scenario) CurrentRegion(bi, month int) netmodel.Region {
	bt := &s.blocks[bi]
	if !bt.Moved(month) {
		return bt.HomeRegion
	}
	return bt.MoveRegion
}

// GenerateStore runs the fast statistical campaign: it evaluates every
// block's state at every round and fills a dataset.Store, marking vantage
// outages as missing. RTT series are tracked for the blocks listed in
// trackRTT.
func (s *Scenario) GenerateStore(trackRTT []netmodel.BlockID) *dataset.Store {
	store := dataset.NewStore(s.TL, s.Space.Blocks())
	for _, b := range trackRTT {
		if bi := store.BlockIndex(b); bi >= 0 {
			store.TrackRTT(bi)
		}
	}
	rounds := s.TL.NumRounds()
	times := make([]time.Time, rounds)
	for r := 0; r < rounds; r++ {
		times[r] = s.TL.Time(r)
		if s.Missing[r] {
			store.SetMissing(r)
		}
	}
	// The campaign shards per block across the worker pool: every stochastic
	// decision in stateAt is a pure hash of (seed, block, round), and each
	// block owns its store rows, so the result is byte-identical to the
	// sequential order at any worker count.
	par.ForEach(len(s.blocks), func(bi int) {
		tracked := store.RTTTracked(bi)
		for r := 0; r < rounds; r++ {
			if s.Missing[r] {
				continue
			}
			st := s.stateAt(bi, r, times[r])
			store.SetRound(bi, r, st.Resp, st.Routed)
			if tracked && st.Resp > 0 {
				store.SetRTT(bi, r, st.RTTMS)
			}
		}
	})
	return store
}

// Responder exposes the scenario as a packet-level simnet.Responder so the
// real scanner can probe it.
func (s *Scenario) Responder() simnet.Responder {
	return simnet.ResponderFunc(func(dst netmodel.Addr, at time.Time) simnet.Reply {
		bi := s.Space.BlockIndex(dst.Block())
		if bi < 0 {
			return simnet.Reply{Kind: simnet.NoReply}
		}
		st := s.BlockStateAt(bi, at)
		if !st.Routed {
			return simnet.Reply{Kind: simnet.NoReply}
		}
		if st.Resp <= 0 {
			return simnet.Reply{Kind: simnet.NoReply}
		}
		rank := s.liveOrder.rank(uint32(dst.Block()), dst.HostByte())
		if int(rank) >= st.Resp {
			return simnet.Reply{Kind: simnet.NoReply}
		}
		// Per-host RTT jitter around the block mean.
		j := int(hash3(s.Cfg.Seed^0x99, uint64(dst), uint64(at.Unix())/600)%7) - 3
		rtt := int(st.RTTMS) + j
		if rtt < 1 {
			rtt = 1
		}
		return simnet.Reply{Kind: simnet.EchoReply, RTT: time.Duration(rtt) * time.Millisecond}
	})
}

// repStride spreads a Trinocular-style ever-active selection across the
// block's historical liveness ranks: census-derived E(b) sets include
// addresses that were active once but have churned away (DHCP pools), so a
// representative at rank 3i only answers when the block's current live
// population exceeds 3i. This staleness is what drags real Trinocular
// availabilities down (Table 4's 24% indeterminate share) and makes
// single-probe inference of partially-alive blocks unstable (Fig 27).
const repStride = 3

// Representatives returns a block's k representative addresses as a
// historical census would select them: ordered by long-term liveness, but
// spread across ranks (see repStride).
func (s *Scenario) Representatives(blk netmodel.BlockID, k int) []netmodel.Addr {
	if s.Space.BlockIndex(blk) < 0 || k <= 0 {
		return nil
	}
	if k > 256/repStride {
		k = 256 / repStride
	}
	out := make([]netmodel.Addr, k)
	found := 0
	for h := 0; h < 256 && found < k; h++ {
		r := int(s.liveOrder.rank(uint32(blk), uint8(h)))
		if r%repStride == 0 && r/repStride < k {
			out[r/repStride] = blk.Addr(uint8(h))
			found++
		}
	}
	return out
}

// Single unvalidated probes experience per-address transient loss (rate
// limiting, intermittent hosts, congestion — "pingin' in the rain"): each
// address has an individual short-term availability between MinProbeAvail
// and MaxProbeAvail. The full-block scanner's per-round counts fold the
// expected loss into RespRate; for a 256-probe census the residual variance
// is negligible (< 2 addresses per block-round), while for single-probe
// inference it is the dominant noise source the paper's Fig 27 measures.
const (
	MinProbeAvail = 0.55
	MaxProbeAvail = 0.98
)

// ProbeFunc adapts the scenario to a single-address ground-truth probe (the
// Trinocular baseline's view of the world). Outcomes are deterministic per
// (address, round-quantized time): retrying the same address in the same
// ten-minute window does not help, as with real rate limiting.
func (s *Scenario) ProbeFunc() func(addr netmodel.Addr, at time.Time) bool {
	return func(addr netmodel.Addr, at time.Time) bool {
		bi := s.Space.BlockIndex(addr.Block())
		if bi < 0 {
			return false
		}
		st := s.BlockStateAt(bi, at)
		if !st.Routed || st.Resp <= 0 {
			return false
		}
		if int(s.liveOrder.rank(uint32(addr.Block()), addr.HostByte())) >= st.Resp {
			return false
		}
		avail := MinProbeAvail + (MaxProbeAvail-MinProbeAvail)*unitFloat(hash2(s.Cfg.Seed^0xa7a, uint64(addr)))
		h := hash3(s.Cfg.Seed^0x10ff, uint64(addr), uint64(at.Unix()/600))
		return unitFloat(h) < avail
	}
}

// indexEvents builds the event↔block indices after the scenario's blocks
// and events are final. Events are sorted chronologically first (stable,
// ties broken by name): downstream consumers — Events() listings, FindEvent
// precedence, truth-window derivation — assume chronological order, and
// event sources like Assemble accept events in any order.
func (s *Scenario) indexEvents() {
	sort.SliceStable(s.events, func(i, j int) bool {
		if !s.events[i].From.Equal(s.events[j].From) {
			return s.events[i].From.Before(s.events[j].From)
		}
		return s.events[i].Name < s.events[j].Name
	})
	// Per-block AS-traits table: stateAt runs once per (block, round) and a
	// map lookup there dominates the generator's profile.
	s.blockAS = make([]*ASTraits, len(s.blocks))
	for bi := range s.blocks {
		s.blockAS[bi] = s.asTraits[s.blocks[bi].ASN]
	}
	s.blockEvents = make([][]int16, len(s.blocks))
	asnSet := make(map[netmodel.ASN]bool)
	regionSet := make(map[netmodel.Region]bool)
	blockSet := make(map[netmodel.BlockID]bool)
	for ei := range s.events {
		ev := &s.events[ei]
		clear(asnSet)
		clear(regionSet)
		clear(blockSet)
		for _, a := range ev.ASNs {
			asnSet[a] = true
		}
		for _, r := range ev.Regions {
			regionSet[r] = true
		}
		for _, b := range ev.Blocks {
			blockSet[b] = true
		}
		for bi := range s.blocks {
			bt := &s.blocks[bi]
			if asnSet[bt.ASN] || regionSet[bt.HomeRegion] || blockSet[bt.Block] {
				s.blockEvents[bi] = append(s.blockEvents[bi], int16(ei))
			}
		}
	}
}
