package sim

import (
	"testing"
	"time"

	"countrymon/internal/geodb"
	"countrymon/internal/netmodel"
	"countrymon/internal/scanner"
	"countrymon/internal/simnet"
)

func TestGenerateStoreMatchesStateAt(t *testing.T) {
	s := testScenario(t)
	store := s.GenerateStore(nil)
	if store.NumBlocks() != s.Space.NumBlocks() {
		t.Fatalf("store blocks = %d", store.NumBlocks())
	}
	for bi := 0; bi < store.NumBlocks(); bi += 53 {
		for r := 0; r < s.TL.NumRounds(); r += 311 {
			if s.Missing[r] {
				if !store.Missing(r) {
					t.Fatalf("round %d should be missing", r)
				}
				continue
			}
			st := s.stateAt(bi, r, s.TL.Time(r))
			want := st.Resp
			if want > 255 {
				want = 255
			}
			if got := store.Resp(bi, r); got != want {
				t.Fatalf("block %d round %d: store=%d state=%d", bi, r, got, want)
			}
			if store.Routed(bi, r) != st.Routed {
				t.Fatalf("block %d round %d: routed mismatch", bi, r)
			}
		}
	}
}

func TestResponderNestedSetConsistency(t *testing.T) {
	s := testScenario(t)
	resp := s.Responder()
	at := s.TL.Time(1000)
	checked := 0
	for bi := 0; bi < s.Space.NumBlocks() && checked < 12; bi += 37 {
		st := s.BlockStateAt(bi, at)
		if st.Resp == 0 {
			continue
		}
		checked++
		blk := s.Space.Blocks()[bi]
		count := 0
		for h := 0; h < 256; h++ {
			r := resp.Respond(blk.Addr(uint8(h)), at)
			if r.Kind == simnet.EchoReply {
				count++
			}
		}
		if count != st.Resp {
			t.Fatalf("block %v: %d hosts answer, state says %d", blk, count, st.Resp)
		}
	}
	if checked == 0 {
		t.Fatal("no responsive blocks sampled")
	}
}

func TestScannerAgreesWithGroundTruth(t *testing.T) {
	// End-to-end: probe a handful of Kherson blocks through the real
	// scanner + simulated wire and compare counts with ground truth.
	s := testScenario(t)
	status := s.Space.Lookup(25482)
	var prefixes []netmodel.Prefix
	prefixes = append(prefixes, status.Prefixes...)
	ts, err := scanner.NewTargetSet(prefixes, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2022, 7, 15, 12, 0, 0, 0, time.UTC)
	net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), s.Responder(), start)
	sc := scanner.New(net, scanner.Config{Rate: 100000, Seed: 5, Epoch: 9, Clock: net, Cooldown: 2 * time.Second})
	rd, err := sc.Run(ts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rd.Blocks {
		br := &rd.Blocks[i]
		bi := s.Space.BlockIndex(br.Block)
		want := s.BlockStateAt(bi, start)
		if int(br.RespCount) != want.Resp {
			t.Errorf("block %v: scanned %d, ground truth %d", br.Block, br.RespCount, want.Resp)
		}
		if want.Resp > 0 {
			got := br.MeanRTT().Milliseconds()
			if got < int64(want.RTTMS)-6 || got > int64(want.RTTMS)+6 {
				t.Errorf("block %v: RTT %dms vs truth %dms", br.Block, got, want.RTTMS)
			}
		}
	}
}

func TestGeoSnapshotChurn(t *testing.T) {
	s := testScenario(t)
	pre := s.GeoSnapshot(-1)
	late := s.GeoSnapshot(s.TL.NumMonths() - 1)
	cPre := pre.RegionIPCounts()
	cLate := late.RegionIPCounts()
	// Luhansk and Kherson must lose heavily; totals must stay plausible.
	for _, r := range []netmodel.Region{netmodel.Luhansk, netmodel.Kherson} {
		if cPre[r] == 0 {
			t.Fatalf("%v empty pre-war", r)
		}
		change := float64(cLate[r]-cPre[r]) / float64(cPre[r])
		if change > -0.3 {
			t.Errorf("%v change = %.2f, want strongly negative", r, change)
		}
	}
	// Abroad reassignments appear.
	cc := late.CountryIPCounts()
	if cc["US"] == 0 || cc["RU"] == 0 {
		t.Errorf("abroad churn missing: %v", cc)
	}
	// Leased Kherson ASes are present in geolocation.
	found := false
	for _, as := range s.LeasedASes() {
		for _, blk := range as.Blocks() {
			bs := late.BlockShares(blk)
			if bs.PerRegion[netmodel.Kherson] > 0 {
				found = true
			}
		}
	}
	if !found {
		t.Error("leased AS blocks not geolocated to Kherson")
	}
}

func TestGeoSnapshotSerializationRoundTrip(t *testing.T) {
	s := testScenario(t)
	snap := s.GeoSnapshot(5)
	if snap.Len() == 0 {
		t.Fatal("empty snapshot")
	}
	var entries int
	for _, e := range snap.Entries() {
		if e.Country == geodb.CountryUA && !e.Region.Valid() {
			t.Fatalf("UA entry without region: %+v", e)
		}
		entries++
	}
	if entries < s.Space.NumBlocks() {
		t.Errorf("snapshot has %d entries for %d blocks", entries, s.Space.NumBlocks())
	}
}

func TestRadiusTrend(t *testing.T) {
	s := testScenario(t)
	early := s.radiusKM(0, true)
	late := s.radiusKM(35, true)
	if early != 50 {
		t.Errorf("2022 static radius = %d, want 50", early)
	}
	if late < 180 || late > 200 {
		t.Errorf("2025 static radius = %d, want ≈200", late)
	}
	if s.radiusKM(10, false) != 500 {
		t.Error("carrier radius should be 500")
	}
}

func TestIPv6Churn(t *testing.T) {
	s := testScenario(t)
	v6 := s.IPv6ChurnByRegion()
	if len(v6) != netmodel.NumRegions {
		t.Fatalf("regions = %d", len(v6))
	}
	if v6[netmodel.Rivne] < v6[netmodel.Kyiv] {
		t.Error("Rivne should show the strongest IPv6 growth")
	}
	pos := 0
	for _, v := range v6 {
		if v > 0 {
			pos++
		}
	}
	if pos < 20 {
		t.Errorf("IPv6 adoption should grow in most oblasts: %d positive", pos)
	}
}
