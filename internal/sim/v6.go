package sim

import (
	"encoding/binary"
	"net/netip"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/scanner6"
	"countrymon/internal/simnet"
)

// IPv6 ground truth (§6 future work, Fig 20): each region gets a /40 under
// a Ukrainian /24 allocation, with /48 sites whose responsive population
// grows with the region's scripted IPv6 adoption. The hitlist is what a
// DNS/NTP/error-harvesting pipeline would have collected.

// v6Base is the synthetic Ukrainian IPv6 super-block.
var v6Base = netip.MustParsePrefix("2a0d:8480::/29")

// V6RegionPrefix returns the /40 carrying a region's sites: the region
// index is encoded in bytes 3-4 of the address.
func V6RegionPrefix(r netmodel.Region) netip.Prefix {
	b := v6Base.Addr().As16()
	b[3] = uint8(r)
	p, _ := netip.AddrFrom16(b).Prefix(40)
	return p
}

// v6RegionOf inverts V6RegionPrefix.
func v6RegionOf(a netip.Addr) netmodel.Region {
	b := a.As16()
	r := netmodel.Region(b[3])
	if !r.Valid() {
		return netmodel.RegionNone
	}
	return r
}

// v6SitesPerRegion scales the per-region site count with the block weights.
func (s *Scenario) v6SitesPerRegion(r netmodel.Region) int {
	n := int(regionParams[r].Weight * 400 * s.Cfg.Scale * 10)
	if n < 2 {
		n = 2
	}
	return n
}

// v6AddrsPerSite is the hitlist density per /48 site.
const v6AddrsPerSite = 8

// V6Hitlist builds the probe target list across all regions.
func (s *Scenario) V6Hitlist() (*scanner6.Hitlist, error) {
	var addrs []netip.Addr
	for _, r := range netmodel.Regions() {
		base := V6RegionPrefix(r).Addr().As16()
		for site := 0; site < s.v6SitesPerRegion(r); site++ {
			b := base
			binary.BigEndian.PutUint16(b[4:6], uint16(site))
			for hst := 0; hst < v6AddrsPerSite; hst++ {
				h := hash3(s.Cfg.Seed^0x6f0, uint64(r)<<32|uint64(site), uint64(hst))
				binary.BigEndian.PutUint64(b[8:16], h|1)
				addrs = append(addrs, netip.AddrFrom16(b))
			}
		}
	}
	return scanner6.NewHitlist(addrs)
}

// v6Adoption returns the fraction of a region's hitlist that answers at the
// given time: it interpolates between a starting share and the share implied
// by the Fig-20 growth percentage.
func (s *Scenario) v6Adoption(r netmodel.Region, at time.Time) float64 {
	start := 0.15 + 0.25*unitFloat(hash2(s.Cfg.Seed^0x60a, uint64(r)))
	growth := s.IPv6ChurnByRegion()[r] / 100
	frac := at.Sub(s.TL.Start()).Hours() / s.TL.End().Sub(s.TL.Start()).Hours()
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	share := start * (1 + growth*frac)
	if share > 0.95 {
		share = 0.95
	}
	if share < 0.01 {
		share = 0.01
	}
	return share
}

// V6Responder exposes the IPv6 ground truth as a simulated wire responder.
// A small share of probes is answered by an intermediate router with an
// ICMPv6 error instead — the addresses §6 proposes to harvest.
func (s *Scenario) V6Responder() simnet.Responder6 {
	return func(dst netip.Addr, at time.Time) simnet.Reply6 {
		r := v6RegionOf(dst)
		if !r.Valid() {
			return simnet.Reply6{Kind: simnet.NoReply}
		}
		b := dst.As16()
		hostHash := hash3(s.Cfg.Seed^0x6e5, uint64(binary.BigEndian.Uint64(b[0:8])), uint64(binary.BigEndian.Uint64(b[8:16])))
		rtt := time.Duration(30+hash2(uint64(s.Cfg.Seed), uint64(r))%22) * time.Millisecond
		if unitFloat(hostHash) < s.v6Adoption(r, at) {
			return simnet.Reply6{Kind: simnet.EchoReply, RTT: rtt}
		}
		// ~7% of silent targets sit behind a router that answers with an
		// error, revealing itself.
		if hostHash>>32%100 < 7 {
			rb := b
			rb[15] = 0x01 // the site router
			rb[14] = 0xff
			return simnet.Reply6{Kind: simnet.HostUnreachable, RTT: rtt, Router: netip.AddrFrom16(rb)}
		}
		return simnet.Reply6{Kind: simnet.NoReply}
	}
}
