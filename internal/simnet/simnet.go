// Package simnet provides the packet-level simulated "wire" that stands in
// for the Internet path between the vantage point and Ukraine. It implements
// scanner.Transport and scanner.Clock over a virtual clock, so scans are
// deterministic and run at CPU speed rather than wire speed, while the
// scanner still encodes, transmits, receives, validates and parses real
// ICMP/IPv4 packets.
//
// Ground truth is supplied by a Responder (normally internal/sim), which
// decides per address and per (virtual) time whether an echo reply, an ICMP
// error, or silence comes back, and with what round-trip time.
package simnet

import (
	"container/heap"
	"fmt"
	"sync"
	"time"

	"countrymon/internal/icmp"
	"countrymon/internal/netmodel"
	"countrymon/internal/scanner"
)

// ReplyKind says how a probed address reacts.
type ReplyKind uint8

const (
	// NoReply means the probe is dropped silently.
	NoReply ReplyKind = iota
	// EchoReply means the address answers the echo request.
	EchoReply
	// HostUnreachable means a gateway answers with ICMP dest-unreachable.
	HostUnreachable
)

// Reply is a Responder's verdict for one probe.
type Reply struct {
	Kind ReplyKind
	RTT  time.Duration
}

// Responder supplies ground truth for probes.
type Responder interface {
	Respond(dst netmodel.Addr, at time.Time) Reply
}

// ResponderFunc adapts a function to the Responder interface.
type ResponderFunc func(dst netmodel.Addr, at time.Time) Reply

// Respond implements Responder.
func (f ResponderFunc) Respond(dst netmodel.Addr, at time.Time) Reply { return f(dst, at) }

// Network is a virtual-time transport. It is safe for concurrent use,
// though the scanner drives it from one goroutine.
type Network struct {
	mu    sync.Mutex
	now   time.Time
	local netmodel.Addr
	resp  Responder
	queue replyHeap
	seq   uint64 // tiebreaker for deterministic ordering

	// Stats
	sent, delivered, dropped uint64
}

// New creates a network whose virtual clock starts at `start`.
func New(local netmodel.Addr, resp Responder, start time.Time) *Network {
	return &Network{now: start, local: local, resp: resp}
}

// LocalAddr implements scanner.Transport.
func (n *Network) LocalAddr() netmodel.Addr { return n.local }

// Now implements scanner.Clock (virtual time).
func (n *Network) Now() time.Time {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.now
}

// Sleep implements scanner.Clock by advancing virtual time.
func (n *Network) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	n.mu.Lock()
	n.now = n.now.Add(d)
	n.mu.Unlock()
}

// WritePacket implements scanner.Transport: it parses the outgoing datagram,
// consults the responder, and enqueues any reply for delivery RTT later.
func (n *Network) WritePacket(b []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.writeLocked(b)
}

// WriteBatch implements scanner.BatchTransport, amortizing one lock
// acquisition over the whole batch. Packets are processed in order with the
// clock held still, so replies enqueue exactly as they would under repeated
// WritePacket calls.
func (n *Network) WriteBatch(pkts [][]byte) (int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i, b := range pkts {
		if err := n.writeLocked(b); err != nil {
			return i, err
		}
	}
	return len(pkts), nil
}

func (n *Network) writeLocked(b []byte) error {
	h, body, err := icmp.ParseIPv4(b)
	if err != nil {
		return fmt.Errorf("simnet: outgoing packet: %w", err)
	}
	if h.Protocol != icmp.ProtoICMP {
		return fmt.Errorf("simnet: unsupported protocol %d", h.Protocol)
	}
	req, err := icmp.Parse(body)
	if err != nil {
		return fmt.Errorf("simnet: outgoing ICMP: %w", err)
	}

	n.sent++
	at := n.now
	r := n.resp.Respond(h.Dst, at)
	switch r.Kind {
	case NoReply:
		n.dropped++
		return nil
	case EchoReply:
		if req.Type != icmp.TypeEchoRequest {
			n.dropped++
			return nil
		}
		reply := icmp.MarshalIPv4(icmp.IPv4Header{
			TTL: 55, Protocol: icmp.ProtoICMP, Src: h.Dst, Dst: h.Src,
		}, icmp.EchoReplyFor(req))
		n.push(reply, at.Add(r.RTT))
	case HostUnreachable:
		reply := icmp.MarshalIPv4(icmp.IPv4Header{
			TTL: 55, Protocol: icmp.ProtoICMP, Src: h.Dst, Dst: h.Src,
		}, icmp.DestUnreachable(icmp.CodeHostUnreachable, b))
		n.push(reply, at.Add(r.RTT))
	}
	return nil
}

func (n *Network) push(pkt []byte, deliverAt time.Time) {
	heap.Push(&n.queue, pendingReply{pkt: pkt, at: deliverAt, seq: n.seq})
	n.seq++
}

// ReadPacket implements scanner.Transport. With wait == 0 it returns only
// packets already due at the current virtual time; with wait > 0 it advances
// the virtual clock to the next delivery within the window, or by the whole
// window if nothing is pending.
func (n *Network) ReadPacket(wait time.Duration) ([]byte, time.Time, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.queue) > 0 {
		head := n.queue[0]
		if !head.at.After(n.now) {
			heap.Pop(&n.queue)
			n.delivered++
			return head.pkt, head.at, nil
		}
		if wait > 0 && !head.at.After(n.now.Add(wait)) {
			n.now = head.at
			heap.Pop(&n.queue)
			n.delivered++
			return head.pkt, head.at, nil
		}
	}
	if wait > 0 {
		n.now = n.now.Add(wait)
	}
	return nil, time.Time{}, scanner.ErrTimeout
}

// ReadBatch implements scanner.BatchTransport: it delivers every reply due
// at (or, for the first packet, within `wait` of) the current virtual time
// under a single lock acquisition, copying each into the caller's reusable
// slot. Delivery order and clock movement are identical to repeated
// ReadPacket calls, so batched reads stay deterministic.
func (n *Network) ReadBatch(pkts [][]byte, ats []time.Time, wait time.Duration) (int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	count := 0
	for count < len(pkts) && len(n.queue) > 0 {
		head := n.queue[0]
		switch {
		case !head.at.After(n.now):
			// Due now: deliver without moving the clock.
		case count == 0 && wait > 0 && !head.at.After(n.now.Add(wait)):
			// First packet within the wait window: advance to its delivery.
			n.now = head.at
		default:
			return count, nil
		}
		heap.Pop(&n.queue)
		n.delivered++
		pkts[count] = append(pkts[count][:0], head.pkt...)
		ats[count] = head.at
		count++
	}
	if count == 0 && wait > 0 {
		n.now = n.now.Add(wait)
	}
	return count, nil
}

// Pending returns how many replies are queued but not yet delivered.
func (n *Network) Pending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.queue)
}

// Counters returns (sent, delivered, dropped) packet counts.
func (n *Network) Counters() (sent, delivered, dropped uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sent, n.delivered, n.dropped
}

type pendingReply struct {
	pkt []byte
	at  time.Time
	seq uint64
}

type replyHeap []pendingReply

func (h replyHeap) Len() int { return len(h) }
func (h replyHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h replyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *replyHeap) Push(x interface{}) { *h = append(*h, x.(pendingReply)) }
func (h *replyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
