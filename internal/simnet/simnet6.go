package simnet

import (
	"container/heap"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"countrymon/internal/icmp6"
	"countrymon/internal/scanner"
)

// Reply6 is a v6 responder's verdict.
type Reply6 struct {
	Kind ReplyKind
	RTT  time.Duration
	// Router, for HostUnreachable-style error replies, is the device that
	// emits the ICMPv6 error (revealed per §6's error-message harvesting).
	Router netip.Addr
}

// Responder6 supplies IPv6 ground truth.
type Responder6 func(dst netip.Addr, at time.Time) Reply6

// Network6 is the IPv6 simulated wire: a virtual-time transport for
// internal/scanner6, mirroring Network for IPv4.
type Network6 struct {
	mu    sync.Mutex
	now   time.Time
	local netip.Addr
	resp  Responder6
	queue replyHeap
	seq   uint64
}

// New6 creates an IPv6 network with its virtual clock at start.
func New6(local netip.Addr, resp Responder6, start time.Time) *Network6 {
	return &Network6{now: start, local: local, resp: resp}
}

// LocalAddr implements scanner6.Transport.
func (n *Network6) LocalAddr() netip.Addr { return n.local }

// Now implements scanner.Clock.
func (n *Network6) Now() time.Time {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.now
}

// Sleep implements scanner.Clock.
func (n *Network6) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	n.mu.Lock()
	n.now = n.now.Add(d)
	n.mu.Unlock()
}

// WritePacket implements scanner6.Transport.
func (n *Network6) WritePacket(b []byte) error {
	h, body, err := icmp6.ParseIPv6(b)
	if err != nil {
		return fmt.Errorf("simnet6: outgoing packet: %w", err)
	}
	if h.NextHeader != icmp6.NextHeaderICMPv6 {
		return fmt.Errorf("simnet6: unsupported next header %d", h.NextHeader)
	}
	req, err := icmp6.Parse(h.Src, h.Dst, body)
	if err != nil {
		return fmt.Errorf("simnet6: outgoing ICMPv6: %w", err)
	}
	// The scanner's buffer is reused; copy what the error path quotes.
	orig := append([]byte(nil), b...)

	n.mu.Lock()
	defer n.mu.Unlock()
	at := n.now
	r := n.resp(h.Dst, at)
	switch r.Kind {
	case EchoReply:
		if req.Type != icmp6.TypeEchoRequest {
			return nil
		}
		reply := icmp6.EchoReplyFor(h.Src, h.Dst, req)
		dg, err := icmp6.MarshalIPv6(icmp6.IPv6Header{
			NextHeader: icmp6.NextHeaderICMPv6, HopLimit: 55, Src: h.Dst, Dst: h.Src,
		}, reply)
		if err != nil {
			return err
		}
		n.push6(dg, at.Add(r.RTT))
	case HostUnreachable:
		router := r.Router
		if !router.IsValid() {
			router = h.Dst
		}
		msg := icmp6.TimeExceeded(router, h.Src, orig)
		dg, err := icmp6.MarshalIPv6(icmp6.IPv6Header{
			NextHeader: icmp6.NextHeaderICMPv6, HopLimit: 55, Src: router, Dst: h.Src,
		}, msg)
		if err != nil {
			return err
		}
		n.push6(dg, at.Add(r.RTT))
	}
	return nil
}

func (n *Network6) push6(pkt []byte, deliverAt time.Time) {
	heap.Push(&n.queue, pendingReply{pkt: pkt, at: deliverAt, seq: n.seq})
	n.seq++
}

// ReadPacket implements scanner6.Transport with the same virtual-time
// semantics as Network.ReadPacket.
func (n *Network6) ReadPacket(wait time.Duration) ([]byte, time.Time, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.queue) > 0 {
		head := n.queue[0]
		if !head.at.After(n.now) {
			heap.Pop(&n.queue)
			return head.pkt, head.at, nil
		}
		if wait > 0 && !head.at.After(n.now.Add(wait)) {
			n.now = head.at
			heap.Pop(&n.queue)
			return head.pkt, head.at, nil
		}
	}
	if wait > 0 {
		n.now = n.now.Add(wait)
	}
	return nil, time.Time{}, scanner.ErrTimeout
}
