package simnet

import (
	"testing"
	"time"

	"countrymon/internal/icmp"
	"countrymon/internal/netmodel"
	"countrymon/internal/scanner"
)

func echoAll(rtt time.Duration) Responder {
	return ResponderFunc(func(netmodel.Addr, time.Time) Reply {
		return Reply{Kind: EchoReply, RTT: rtt}
	})
}

func probeFor(dst netmodel.Addr, src netmodel.Addr) []byte {
	return icmp.MarshalIPv4(icmp.IPv4Header{TTL: 64, Protocol: icmp.ProtoICMP, Src: src, Dst: dst},
		icmp.EchoRequest(1, 2, []byte{0, 0, 0, 0, 0, 0, 0, 0}))
}

func TestNetworkDeliversAfterRTT(t *testing.T) {
	start := time.Unix(100, 0)
	src := netmodel.MustParseAddr("198.51.100.1")
	dst := netmodel.MustParseAddr("91.198.4.1")
	n := New(src, echoAll(50*time.Millisecond), start)

	if err := n.WritePacket(probeFor(dst, src)); err != nil {
		t.Fatal(err)
	}
	// Not due yet at wait=0.
	if _, _, err := n.ReadPacket(0); err != scanner.ErrTimeout {
		t.Fatalf("expected timeout before RTT elapsed, got %v", err)
	}
	pkt, at, err := n.ReadPacket(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if want := start.Add(50 * time.Millisecond); !at.Equal(want) {
		t.Errorf("delivered at %v, want %v", at, want)
	}
	h, body, err := icmp.ParseIPv4(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if h.Src != dst || h.Dst != src {
		t.Errorf("reply addressing wrong: %v -> %v", h.Src, h.Dst)
	}
	m, err := icmp.Parse(body)
	if err != nil || m.Type != icmp.TypeEchoReply {
		t.Errorf("reply not an echo reply: %v %v", m.Type, err)
	}
	// Virtual clock advanced to delivery time.
	if !n.Now().Equal(start.Add(50 * time.Millisecond)) {
		t.Errorf("clock = %v", n.Now())
	}
}

func TestNetworkOrdersByDeliveryTime(t *testing.T) {
	start := time.Unix(0, 0)
	src := netmodel.MustParseAddr("198.51.100.1")
	slow := netmodel.MustParseAddr("10.0.0.1")
	fast := netmodel.MustParseAddr("10.0.0.2")
	n := New(src, ResponderFunc(func(d netmodel.Addr, _ time.Time) Reply {
		if d == slow {
			return Reply{Kind: EchoReply, RTT: 100 * time.Millisecond}
		}
		return Reply{Kind: EchoReply, RTT: 10 * time.Millisecond}
	}), start)

	n.WritePacket(probeFor(slow, src)) // sent first, arrives second
	n.WritePacket(probeFor(fast, src))

	pkt1, _, err := n.ReadPacket(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	h1, _, _ := icmp.ParseIPv4(pkt1)
	if h1.Src != fast {
		t.Errorf("first delivery from %v, want fast responder", h1.Src)
	}
	pkt2, _, err := n.ReadPacket(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	h2, _, _ := icmp.ParseIPv4(pkt2)
	if h2.Src != slow {
		t.Errorf("second delivery from %v, want slow responder", h2.Src)
	}
}

func TestNetworkTimeoutAdvancesClock(t *testing.T) {
	start := time.Unix(0, 0)
	n := New(netmodel.MustParseAddr("198.51.100.1"), echoAll(time.Hour), start)
	_, _, err := n.ReadPacket(200 * time.Millisecond)
	if err != scanner.ErrTimeout {
		t.Fatalf("err = %v", err)
	}
	if !n.Now().Equal(start.Add(200 * time.Millisecond)) {
		t.Errorf("clock = %v, want start+200ms", n.Now())
	}
}

func TestNetworkDropsSilent(t *testing.T) {
	n := New(netmodel.MustParseAddr("198.51.100.1"),
		ResponderFunc(func(netmodel.Addr, time.Time) Reply { return Reply{Kind: NoReply} }),
		time.Unix(0, 0))
	n.WritePacket(probeFor(netmodel.MustParseAddr("10.0.0.1"), netmodel.MustParseAddr("198.51.100.1")))
	sent, delivered, dropped := n.Counters()
	if sent != 1 || delivered != 0 || dropped != 1 {
		t.Errorf("counters = %d/%d/%d", sent, delivered, dropped)
	}
	if n.Pending() != 0 {
		t.Error("silent probe left a pending reply")
	}
}

func TestNetworkRejectsGarbage(t *testing.T) {
	n := New(netmodel.MustParseAddr("198.51.100.1"), echoAll(0), time.Unix(0, 0))
	if err := n.WritePacket([]byte{1, 2, 3}); err == nil {
		t.Error("garbage accepted")
	}
}

func TestWireServerEndToEnd(t *testing.T) {
	// Real sockets: scanner -> UDP tunnel -> wire server -> replies.
	resp := ResponderFunc(func(dst netmodel.Addr, _ time.Time) Reply {
		if dst.HostByte() < 100 {
			return Reply{Kind: EchoReply}
		}
		return Reply{Kind: NoReply}
	})
	srv, err := NewWireServer("127.0.0.1:0", resp)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tr, err := DialUDP(srv.Addr(), netmodel.MustParseAddr("198.51.100.1"))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	ts, err := scanner.NewTargetSet([]netmodel.Prefix{netmodel.MustParsePrefix("10.9.0.0/24")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sc := scanner.New(tr, scanner.Config{Rate: 20000, Seed: 11, Epoch: 3, Cooldown: 300 * time.Millisecond})
	rd, err := sc.Run(ts)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Stats.Sent != 256 {
		t.Errorf("Sent = %d", rd.Stats.Sent)
	}
	// UDP on loopback is reliable in practice; allow a tiny slack anyway.
	if rd.Stats.Valid < 95 || rd.Stats.Valid > 100 {
		t.Errorf("Valid = %d, want ≈100", rd.Stats.Valid)
	}
	if got := rd.Blocks[0].RespCount; got != uint16(rd.Stats.Valid) {
		t.Errorf("block count %d != valid %d", got, rd.Stats.Valid)
	}
}
