package simnet

import (
	"errors"
	"net"
	"os"
	"syscall"
	"time"

	"countrymon/internal/icmp"
	"countrymon/internal/netmodel"
	"countrymon/internal/scanner"
)

// UDP tunnel transport: the same IPv4+ICMP datagrams the scanner would put
// on a raw socket are carried as UDP payloads to a WireServer, which plays
// the role of the Internet path and the probed hosts. This exercises real
// sockets, real concurrency and real timing without requiring privileges,
// and is used by integration tests and the fbscan tool's udp mode.

// WireServer terminates the UDP tunnel and answers probes per its Responder.
type WireServer struct {
	conn *net.UDPConn
	resp Responder
	done chan struct{}
}

// NewWireServer starts a server on addr (e.g. "127.0.0.1:0").
func NewWireServer(addr string, resp Responder) (*WireServer, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	s := &WireServer{conn: conn, resp: resp, done: make(chan struct{})}
	go s.serve()
	return s, nil
}

// Addr returns the server's UDP address.
func (s *WireServer) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

// Close shuts the server down.
func (s *WireServer) Close() error {
	close(s.done)
	return s.conn.Close()
}

func (s *WireServer) serve() {
	buf := make([]byte, 64*1024)
	for {
		n, peer, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		go s.handle(pkt, peer)
	}
}

func (s *WireServer) handle(pkt []byte, peer *net.UDPAddr) {
	h, body, err := icmp.ParseIPv4(pkt)
	if err != nil || h.Protocol != icmp.ProtoICMP {
		return
	}
	req, err := icmp.Parse(body)
	if err != nil {
		return
	}
	r := s.resp.Respond(h.Dst, time.Now())
	var reply []byte
	switch r.Kind {
	case EchoReply:
		if req.Type != icmp.TypeEchoRequest {
			return
		}
		reply = icmp.MarshalIPv4(icmp.IPv4Header{
			TTL: 55, Protocol: icmp.ProtoICMP, Src: h.Dst, Dst: h.Src,
		}, icmp.EchoReplyFor(req))
	case HostUnreachable:
		reply = icmp.MarshalIPv4(icmp.IPv4Header{
			TTL: 55, Protocol: icmp.ProtoICMP, Src: h.Dst, Dst: h.Src,
		}, icmp.DestUnreachable(icmp.CodeHostUnreachable, pkt))
	default:
		return
	}
	if r.RTT > 0 {
		time.Sleep(r.RTT)
	}
	s.conn.WriteToUDP(reply, peer)
}

// UDPTransport implements scanner.Transport over the tunnel.
type UDPTransport struct {
	conn  *net.UDPConn
	local netmodel.Addr
	rbuf  []byte // ReadBatch scratch; reads come from one goroutine
}

// DialUDP connects a transport to a WireServer.
func DialUDP(server *net.UDPAddr, local netmodel.Addr) (*UDPTransport, error) {
	conn, err := net.DialUDP("udp", nil, server)
	if err != nil {
		return nil, err
	}
	return &UDPTransport{conn: conn, local: local}, nil
}

// LocalAddr implements scanner.Transport.
func (t *UDPTransport) LocalAddr() netmodel.Addr { return t.local }

// WritePacket implements scanner.Transport.
func (t *UDPTransport) WritePacket(b []byte) error {
	_, err := t.conn.Write(b)
	return classifyErr(err)
}

// ReadPacket implements scanner.Transport.
func (t *UDPTransport) ReadPacket(wait time.Duration) ([]byte, time.Time, error) {
	if wait <= 0 {
		wait = time.Millisecond
	}
	if err := t.conn.SetReadDeadline(time.Now().Add(wait)); err != nil {
		return nil, time.Time{}, err
	}
	buf := make([]byte, 64*1024)
	n, err := t.conn.Read(buf)
	at := time.Now()
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() || errors.Is(err, os.ErrDeadlineExceeded) {
			return nil, time.Time{}, scanner.ErrTimeout
		}
		return nil, time.Time{}, classifyErr(err)
	}
	return buf[:n], at, nil
}

// WriteBatch implements scanner.BatchTransport. UDP writes are already one
// syscall each, so the win here is skipping the per-packet interface and
// error-classification overhead on the happy path.
func (t *UDPTransport) WriteBatch(pkts [][]byte) (int, error) {
	for i, b := range pkts {
		if _, err := t.conn.Write(b); err != nil {
			return i, classifyErr(err)
		}
	}
	return len(pkts), nil
}

// ReadBatch implements scanner.BatchTransport with a reused 64 KB scratch
// buffer, so draining a burst of replies costs zero allocations instead of
// one 64 KB buffer per packet. The first read honors `wait`; the rest only
// take datagrams already queued in the socket buffer.
func (t *UDPTransport) ReadBatch(pkts [][]byte, ats []time.Time, wait time.Duration) (int, error) {
	if t.rbuf == nil {
		t.rbuf = make([]byte, 64*1024)
	}
	count := 0
	for count < len(pkts) {
		deadline := time.Now()
		if count == 0 {
			if wait <= 0 {
				wait = time.Millisecond
			}
			deadline = deadline.Add(wait)
		}
		if err := t.conn.SetReadDeadline(deadline); err != nil {
			return count, err
		}
		n, err := t.conn.Read(t.rbuf)
		at := time.Now()
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() || errors.Is(err, os.ErrDeadlineExceeded) {
				return count, nil
			}
			return count, classifyErr(err)
		}
		pkts[count] = append(pkts[count][:0], t.rbuf[:n]...)
		ats[count] = at
		count++
	}
	return count, nil
}

// Close releases the socket.
func (t *UDPTransport) Close() error { return t.conn.Close() }

// transientSocketErr marks socket errors that a retry can plausibly clear,
// so the scanner's backoff machinery keys on them instead of treating the
// address (or the whole receive path) as dead.
type transientSocketErr struct{ err error }

func (e *transientSocketErr) Error() string   { return e.err.Error() }
func (e *transientSocketErr) Unwrap() error   { return e.err }
func (e *transientSocketErr) Transient() bool { return true }

// classifyErr wraps recoverable socket conditions — full send buffers,
// interrupted syscalls, momentary refusals while the far end restarts —
// as transient. Anything else passes through unchanged.
func classifyErr(err error) error {
	if err == nil {
		return nil
	}
	var errno syscall.Errno
	if errors.As(err, &errno) {
		switch errno {
		case syscall.EAGAIN, syscall.ENOBUFS, syscall.EINTR, syscall.ECONNREFUSED:
			return &transientSocketErr{err: err}
		}
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return &transientSocketErr{err: err}
	}
	return err
}
