package simnet

import (
	"errors"
	"net"
	"os"
	"syscall"
	"testing"

	"countrymon/internal/scanner"
)

func TestClassifyErrTransientSocketConditions(t *testing.T) {
	for _, errno := range []syscall.Errno{
		syscall.EAGAIN, syscall.ENOBUFS, syscall.EINTR, syscall.ECONNREFUSED,
	} {
		wrapped := &net.OpError{Op: "write", Net: "udp",
			Err: os.NewSyscallError("sendto", errno)}
		got := classifyErr(wrapped)
		if !scanner.IsTransient(got) {
			t.Errorf("%v not classified transient", errno)
		}
		if !errors.Is(got, errno) {
			t.Errorf("%v lost from the error chain", errno)
		}
	}
}

func TestClassifyErrPassesHardErrorsThrough(t *testing.T) {
	hard := &net.OpError{Op: "write", Net: "udp",
		Err: os.NewSyscallError("sendto", syscall.ENETUNREACH)}
	if got := classifyErr(hard); got != hard || scanner.IsTransient(got) {
		t.Errorf("hard error mangled: %v", got)
	}
	plain := errors.New("broken")
	if got := classifyErr(plain); got != plain {
		t.Errorf("plain error mangled: %v", got)
	}
	if classifyErr(nil) != nil {
		t.Error("nil error mangled")
	}
}
