// Package timeline models the measurement campaign's clock: the mapping
// between probing rounds and wall-clock time, the month grid used for
// eligibility and geolocation snapshots, and the vantage-point outage
// calendar during which no data exists (§3.1, "Limitation — Single Vantage
// Point").
package timeline

import (
	"fmt"
	"time"
)

// Campaign start and end as in the paper: probing began 2022-03-02 22:00 UTC
// (the 7th day of the full-scale invasion) and the analysed window closes on
// the invasion's third anniversary.
var (
	DefaultStart = time.Date(2022, 3, 2, 22, 0, 0, 0, time.UTC)
	DefaultEnd   = time.Date(2025, 2, 24, 0, 0, 0, 0, time.UTC)

	// InvasionStart anchors "day N of the invasion" arithmetic.
	InvasionStart = time.Date(2022, 2, 24, 0, 0, 0, 0, time.UTC)
)

// DefaultInterval is the paper's bi-hourly probing interval.
const DefaultInterval = 2 * time.Hour

// Timeline is an immutable description of a measurement campaign's rounds.
type Timeline struct {
	start    time.Time
	interval time.Duration
	rounds   int
}

// New builds a timeline of rounds at the given interval covering
// [start, end). It panics if the interval is not positive or end precedes
// start, since both indicate a programming error in scenario setup.
func New(start, end time.Time, interval time.Duration) *Timeline {
	if interval <= 0 {
		panic("timeline: non-positive interval")
	}
	if end.Before(start) {
		panic("timeline: end before start")
	}
	rounds := int(end.Sub(start)/interval) + 1
	return &Timeline{start: start.UTC(), interval: interval, rounds: rounds}
}

// Default returns the paper's campaign timeline: bi-hourly rounds from
// 2022-03-02 22:00 UTC through 2025-02-24.
func Default() *Timeline { return New(DefaultStart, DefaultEnd, DefaultInterval) }

// Start returns the time of round 0.
func (t *Timeline) Start() time.Time { return t.start }

// End returns the time of the last round.
func (t *Timeline) End() time.Time { return t.Time(t.rounds - 1) }

// Interval returns the spacing between rounds.
func (t *Timeline) Interval() time.Duration { return t.interval }

// NumRounds returns the number of probing rounds.
func (t *Timeline) NumRounds() int { return t.rounds }

// Time returns the UTC start time of round i.
func (t *Timeline) Time(i int) time.Time {
	return t.start.Add(time.Duration(i) * t.interval)
}

// Round returns the index of the last round at or before the given time,
// clamped to [0, NumRounds-1].
func (t *Timeline) Round(at time.Time) int {
	if at.Before(t.start) {
		return 0
	}
	i := int(at.Sub(t.start) / t.interval)
	if i >= t.rounds {
		return t.rounds - 1
	}
	return i
}

// RoundsPerDay returns the number of rounds in 24 hours (at least 1).
func (t *Timeline) RoundsPerDay() int {
	n := int(24 * time.Hour / t.interval)
	if n < 1 {
		return 1
	}
	return n
}

// RoundsPerWeek returns the number of rounds in the 7-day moving-average
// window the outage signals compare against (§3.1).
func (t *Timeline) RoundsPerWeek() int {
	n := int(7 * 24 * time.Hour / t.interval)
	if n < 1 {
		return 1
	}
	return n
}

// MonthIndex returns a dense month index for the given time, with month 0
// being the month containing round 0. Times before the campaign map to 0.
func (t *Timeline) MonthIndex(at time.Time) int {
	at = at.UTC()
	m := (at.Year()-t.start.Year())*12 + int(at.Month()) - int(t.start.Month())
	if m < 0 {
		return 0
	}
	return m
}

// MonthOfRound returns the dense month index of round i.
func (t *Timeline) MonthOfRound(i int) int { return t.MonthIndex(t.Time(i)) }

// NumMonths returns the number of distinct months the campaign touches.
func (t *Timeline) NumMonths() int { return t.MonthOfRound(t.rounds-1) + 1 }

// MonthStart returns the first day (UTC midnight) of dense month m.
func (t *Timeline) MonthStart(m int) time.Time {
	return time.Date(t.start.Year(), t.start.Month()+time.Month(m), 1, 0, 0, 0, 0, time.UTC)
}

// MonthLabel renders dense month m as "YYYY-MM".
func (t *Timeline) MonthLabel(m int) string {
	ms := t.MonthStart(m)
	return fmt.Sprintf("%04d-%02d", ms.Year(), int(ms.Month()))
}

// MonthRounds returns the half-open round range [lo, hi) belonging to dense
// month m. An empty range is returned for months outside the campaign.
func (t *Timeline) MonthRounds(m int) (lo, hi int) {
	lo, hi = t.rounds, t.rounds
	// The campaign spans a bounded number of months, so a linear scan per
	// month boundary would be fine; binary search keeps it exact and cheap.
	lo = t.searchRound(func(i int) bool { return t.MonthOfRound(i) >= m })
	hi = t.searchRound(func(i int) bool { return t.MonthOfRound(i) > m })
	return lo, hi
}

// DayIndex returns a dense day index (day 0 contains round 0).
func (t *Timeline) DayIndex(at time.Time) int {
	d := int(at.UTC().Sub(t.start.Truncate(24*time.Hour)) / (24 * time.Hour))
	if d < 0 {
		return 0
	}
	return d
}

// DayOfRound returns the dense day index of round i.
func (t *Timeline) DayOfRound(i int) int { return t.DayIndex(t.Time(i)) }

// NumDays returns the number of distinct days the campaign touches.
func (t *Timeline) NumDays() int { return t.DayOfRound(t.rounds-1) + 1 }

// DayStart returns UTC midnight of dense day d.
func (t *Timeline) DayStart(d int) time.Time {
	return t.start.Truncate(24 * time.Hour).Add(time.Duration(d) * 24 * time.Hour)
}

func (t *Timeline) searchRound(pred func(int) bool) int {
	lo, hi := 0, t.rounds
	for lo < hi {
		mid := (lo + hi) / 2
		if pred(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
