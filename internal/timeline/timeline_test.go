package timeline

import (
	"testing"
	"time"
)

func TestDefaultCampaign(t *testing.T) {
	tl := Default()
	if got := tl.NumRounds(); got != 13070 {
		// (2025-02-24 00:00 - 2022-03-02 22:00) = 1089d2h -> /2h + 1
		t.Fatalf("NumRounds = %d, want 13070", got)
	}
	if !tl.Time(0).Equal(DefaultStart) {
		t.Errorf("Time(0) = %v", tl.Time(0))
	}
	if tl.Time(1).Sub(tl.Time(0)) != 2*time.Hour {
		t.Errorf("interval mismatch")
	}
	if got := tl.RoundsPerDay(); got != 12 {
		t.Errorf("RoundsPerDay = %d, want 12", got)
	}
	if got := tl.RoundsPerWeek(); got != 84 {
		t.Errorf("RoundsPerWeek = %d, want 84", got)
	}
	if tl.End().After(DefaultEnd) {
		t.Errorf("End %v after campaign end", tl.End())
	}
}

func TestRoundInverse(t *testing.T) {
	tl := Default()
	for _, i := range []int{0, 1, 11, 12, 1000, tl.NumRounds() - 1} {
		if got := tl.Round(tl.Time(i)); got != i {
			t.Errorf("Round(Time(%d)) = %d", i, got)
		}
	}
	if got := tl.Round(DefaultStart.Add(-time.Hour)); got != 0 {
		t.Errorf("Round before start = %d, want 0", got)
	}
	if got := tl.Round(DefaultEnd.AddDate(1, 0, 0)); got != tl.NumRounds()-1 {
		t.Errorf("Round after end = %d, want clamp", got)
	}
	// Mid-interval times map to the preceding round.
	if got := tl.Round(tl.Time(5).Add(time.Hour)); got != 5 {
		t.Errorf("mid-interval Round = %d, want 5", got)
	}
}

func TestMonths(t *testing.T) {
	tl := Default()
	if got := tl.NumMonths(); got != 36 {
		t.Fatalf("NumMonths = %d, want 36 (2022-03 .. 2025-02)", got)
	}
	if got := tl.MonthLabel(0); got != "2022-03" {
		t.Errorf("MonthLabel(0) = %s", got)
	}
	if got := tl.MonthLabel(35); got != "2025-02" {
		t.Errorf("MonthLabel(35) = %s", got)
	}
	if got := tl.MonthIndex(time.Date(2023, 6, 6, 12, 0, 0, 0, time.UTC)); got != 15 {
		t.Errorf("MonthIndex(2023-06) = %d, want 15", got)
	}
	// Round->month consistency and monotonicity.
	prev := 0
	for i := 0; i < tl.NumRounds(); i += 97 {
		m := tl.MonthOfRound(i)
		if m < prev {
			t.Fatalf("month index decreased at round %d", i)
		}
		prev = m
	}
}

func TestMonthRoundsPartition(t *testing.T) {
	tl := Default()
	covered := 0
	for m := 0; m < tl.NumMonths(); m++ {
		lo, hi := tl.MonthRounds(m)
		if hi < lo {
			t.Fatalf("month %d: hi < lo", m)
		}
		for i := lo; i < hi; i++ {
			if tl.MonthOfRound(i) != m {
				t.Fatalf("round %d assigned to month %d but MonthOfRound=%d", i, m, tl.MonthOfRound(i))
			}
		}
		covered += hi - lo
	}
	if covered != tl.NumRounds() {
		t.Fatalf("month ranges cover %d rounds, want %d", covered, tl.NumRounds())
	}
}

func TestDays(t *testing.T) {
	tl := Default()
	if got := tl.DayOfRound(0); got != 0 {
		t.Errorf("DayOfRound(0) = %d", got)
	}
	// Round 0 is 22:00; round 1 (00:00 next day) is day 1.
	if got := tl.DayOfRound(1); got != 1 {
		t.Errorf("DayOfRound(1) = %d, want 1", got)
	}
	if tl.NumDays() < 1080 {
		t.Errorf("NumDays = %d, suspiciously small", tl.NumDays())
	}
	d := tl.DayStart(10)
	if d.Hour() != 0 || d.Minute() != 0 {
		t.Errorf("DayStart not midnight: %v", d)
	}
}

func TestNewPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero interval": func() { New(DefaultStart, DefaultEnd, 0) },
		"end<start":     func() { New(DefaultEnd, DefaultStart, time.Hour) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestVantageOutages(t *testing.T) {
	tl := Default()
	missing := MissingRounds(tl, DefaultVantageOutages())
	if len(missing) != tl.NumRounds() {
		t.Fatalf("missing len = %d", len(missing))
	}
	checks := []struct {
		at   time.Time
		want bool
	}{
		{time.Date(2022, 3, 6, 12, 0, 0, 0, time.UTC), true},
		{time.Date(2022, 3, 8, 12, 0, 0, 0, time.UTC), false},
		{time.Date(2022, 3, 20, 0, 0, 0, 0, time.UTC), true},
		{time.Date(2022, 10, 15, 2, 0, 0, 0, time.UTC), true},
		{time.Date(2024, 3, 15, 2, 0, 0, 0, time.UTC), true},
		{time.Date(2024, 7, 13, 20, 0, 0, 0, time.UTC), true},
		{time.Date(2024, 7, 14, 2, 0, 0, 0, time.UTC), false},
		{time.Date(2023, 6, 6, 12, 0, 0, 0, time.UTC), false},
	}
	for _, c := range checks {
		if got := missing[tl.Round(c.at)]; got != c.want {
			t.Errorf("missing at %v = %v, want %v", c.at, got, c.want)
		}
	}
	// Total missing days roughly: 2+15+8+29+1+13+1 = 69 days.
	n := 0
	for _, m := range missing {
		if m {
			n++
		}
	}
	days := float64(n) / float64(tl.RoundsPerDay())
	if days < 60 || days > 75 {
		t.Errorf("missing ~%0.1f days, want ≈69", days)
	}
}
