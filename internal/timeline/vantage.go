package timeline

import "time"

// VantageOutage is a period during which the single vantage point was offline
// and no measurement data exists.
type VantageOutage struct {
	From, To time.Time // inclusive dates (whole days, UTC)
}

func day(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// DefaultVantageOutages lists the vantage-point outages the paper reports
// (§3.1): March 6-7 2022, March 14-28 2022, October 12-19 2022,
// March 5 - April 2 2024, July 13 2024, August 7-19 2024, September 16 2024.
func DefaultVantageOutages() []VantageOutage {
	return []VantageOutage{
		{day(2022, time.March, 6), day(2022, time.March, 7)},
		{day(2022, time.March, 14), day(2022, time.March, 28)},
		{day(2022, time.October, 12), day(2022, time.October, 19)},
		{day(2024, time.March, 5), day(2024, time.April, 2)},
		{day(2024, time.July, 13), day(2024, time.July, 13)},
		{day(2024, time.August, 7), day(2024, time.August, 19)},
		{day(2024, time.September, 16), day(2024, time.September, 16)},
	}
}

// Contains reports whether the given time falls inside the outage (the whole
// To day is included).
func (v VantageOutage) Contains(at time.Time) bool {
	return !at.Before(v.From) && at.Before(v.To.Add(24*time.Hour))
}

// MissingRounds marks which rounds of the timeline fall inside any of the
// outages. The result is indexed by round.
func MissingRounds(t *Timeline, outages []VantageOutage) []bool {
	missing := make([]bool, t.NumRounds())
	for _, o := range outages {
		lo := t.Round(o.From)
		hi := t.Round(o.To.Add(24 * time.Hour))
		for i := lo; i <= hi && i < t.NumRounds(); i++ {
			if o.Contains(t.Time(i)) {
				missing[i] = true
			}
		}
	}
	return missing
}
