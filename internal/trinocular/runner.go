package trinocular

import (
	"time"

	"countrymon/internal/dataset"
	"countrymon/internal/netmodel"
	"countrymon/internal/par"
)

// Representatives supplies a block's ever-active addresses, most reliable
// first (in reality derived from historical census data; the simulator
// derives it from the block's liveness order).
type Representatives func(block netmodel.BlockID, k int) []netmodel.Addr

// Runner executes a Trinocular campaign over the same rounds as the
// measurement store, so its outage feed is directly comparable with the
// full-block scans.
type Runner struct {
	store    *dataset.Store
	space    *netmodel.Space
	trackers []*BlockTracker
	storeIdx []int // store block index per tracker

	// Indeterminate marks eligible blocks with A < 0.3.
	Indeterminate []bool
}

// trainingMonths is the bootstrap window used to estimate E(b) and A.
const trainingMonths = 2

// calibrationSamples is how many historical instants the per-address
// availability A is estimated from. In the original system A comes from
// long-term census pings of the very addresses in E(b); sampling the probe
// function across the training window reproduces that, including the
// staleness and intermittency that make many real blocks low-availability
// (Table 4: 24% of eligible blocks have A < 0.3).
const calibrationSamples = 12

// NewRunner selects eligible blocks from the store's training window,
// calibrates each block's per-address availability by sampling probe over
// the same window, and initializes the trackers.
func NewRunner(store *dataset.Store, space *netmodel.Space, reps Representatives, probe Probe) *Runner {
	r := &Runner{store: store, space: space}
	tl := store.Timeline()
	months := tl.NumMonths()
	tm := trainingMonths
	if tm > months {
		tm = months
	}
	_, trainEnd := tl.MonthRounds(tm - 1)
	if trainEnd < calibrationSamples {
		trainEnd = calibrationSamples
	}
	// Eligibility and calibration are independent per block: evaluate all
	// candidates across the worker pool, then append the selected ones in
	// block order so tracker ordering never depends on scheduling.
	type candidate struct {
		tracker       *BlockTracker
		indeterminate bool
	}
	cands := par.Map(store.NumBlocks(), func(bi int) *candidate {
		blk := store.Blocks()[bi]
		ever := 0
		for m := 0; m < tm; m++ {
			if st := store.MonthStats(bi, m); st.EverActive > ever {
				ever = st.EverActive
			}
		}
		if ever < MinEverActive {
			return nil
		}
		addrs := reps(blk, MinEverActive)
		if len(addrs) == 0 {
			return nil
		}
		// Calibrate A: empirical per-probe success across the training
		// window over the representative set.
		positives, probes := 0, 0
		step := trainEnd / calibrationSamples
		if step < 1 {
			step = 1
		}
		for round := 0; round < trainEnd; round += step {
			if store.Missing(round) {
				continue
			}
			at := tl.Time(round)
			for _, a := range addrs {
				probes++
				if probe(a, at) {
					positives++
				}
			}
		}
		avail := 0.0
		if probes > 0 {
			avail = float64(positives) / float64(probes)
		}
		if !Eligible(ever, avail) {
			return nil
		}
		return &candidate{
			tracker:       NewBlockTracker(blk, addrs, avail),
			indeterminate: avail < IndeterminateBelow,
		}
	})
	for bi, c := range cands {
		if c == nil {
			continue
		}
		r.trackers = append(r.trackers, c.tracker)
		r.storeIdx = append(r.storeIdx, bi)
		r.Indeterminate = append(r.Indeterminate, c.indeterminate)
	}
	return r
}

// NumBlocks returns the number of tracked (eligible) blocks.
func (r *Runner) NumBlocks() int { return len(r.trackers) }

// NumIndeterminate returns how many tracked blocks have indeterminate-prone
// availability (A < 0.3).
func (r *Runner) NumIndeterminate() int {
	n := 0
	for _, ind := range r.Indeterminate {
		if ind {
			n++
		}
	}
	return n
}

// Result is a completed Trinocular campaign.
type Result struct {
	// PerAS[asn][round] is the number of the AS's tracked blocks inferred
	// up — the TRIN■ signal.
	PerAS map[netmodel.ASN][]float32
	// States[t][round] is tracker t's inferred state per round.
	States [][]State
	// Blocks lists the tracked blocks (aligned with States).
	Blocks []netmodel.BlockID
	// ProbesSent counts all probes (scheduled + adaptive).
	ProbesSent uint64
	// Missing mirrors the store's vantage outages.
	Missing []bool
}

// Run probes every tracked block at every (non-missing) store round.
//
// A tracker's belief evolution depends only on its own probe history and the
// probe function is a pure function of (address, time), so the campaign is
// tracker-major and shards trackers across the worker pool: each goroutine
// owns one tracker's full timeline. Per-AS counts and the probe total are
// then aggregated sequentially in tracker order, giving results identical to
// the round-major sequential sweep.
func (r *Runner) Run(probe Probe) *Result {
	tl := r.store.Timeline()
	rounds := tl.NumRounds()
	res := &Result{
		PerAS:   make(map[netmodel.ASN][]float32),
		States:  make([][]State, len(r.trackers)),
		Blocks:  make([]netmodel.BlockID, len(r.trackers)),
		Missing: r.store.MissingRounds(),
	}
	times := make([]time.Time, rounds)
	for round := 0; round < rounds; round++ {
		times[round] = tl.Time(round)
	}
	probeCounts := make([]uint64, len(r.trackers))
	par.ForEach(len(r.trackers), func(t int) {
		tr := r.trackers[t]
		states := make([]State, rounds)
		var sent uint64
		for round := 0; round < rounds; round++ {
			if res.Missing[round] {
				continue
			}
			state, probes := tr.Round(probe, times[round])
			sent += uint64(probes)
			states[round] = state
		}
		res.States[t] = states
		probeCounts[t] = sent
	})
	for t, tr := range r.trackers {
		res.Blocks[t] = tr.Block
		res.ProbesSent += probeCounts[t]
		asn := r.space.OriginOf(tr.Block)
		perAS := res.PerAS[asn]
		if perAS == nil {
			perAS = make([]float32, rounds)
			res.PerAS[asn] = perAS
		}
		for round, state := range res.States[t] {
			if state == StateUp {
				perAS[round]++
			}
		}
	}
	return res
}

// UpSeries returns the total up-block count per round (region/country
// level).
func (res *Result) UpSeries() []float32 {
	if len(res.States) == 0 {
		return nil
	}
	out := make([]float32, len(res.States[0]))
	for t := range res.States {
		for r, s := range res.States[t] {
			if s == StateUp {
				out[r]++
			}
		}
	}
	return out
}

// ProbeInterval documents the baseline's native probing interval (the IODA
// deployment probes every ~10 minutes; see Table 1). The runner probes at
// the store's rounds for comparability; the finer interval is exercised in
// tests and the interval-ablation bench.
const ProbeInterval = 10 * time.Minute
