// Package trinocular implements the Trinocular outage-detection baseline
// (Quan, Heidemann & Pradkin, SIGCOMM 2013) the paper compares against: per
// /24 block, a Bayesian belief B(U) that the block is up, updated from
// single-address probes of the block's ever-active set E(b), with adaptive
// short-term probing (up to 15 addresses) whenever the belief is uncertain.
//
// Block eligibility follows the baseline's rules: E(b) ≥ 15 and long-term
// availability A ≥ 0.1; blocks with A < 0.3 tend to indeterminate belief
// (Table 4). The per-AS "active blocks" series this package produces is the
// TRIN■ signal used in the IODA comparisons (§5.4, Figs 15-17, 25-27).
package trinocular

import (
	"time"

	"countrymon/internal/netmodel"
)

// Probe asks ground truth whether one address answers at one time.
type Probe func(addr netmodel.Addr, at time.Time) bool

// Belief thresholds from the baseline.
const (
	BeliefUp   = 0.9
	BeliefDown = 0.1
	beliefMax  = 0.99
	beliefMin  = 0.01
	// maxAdaptiveProbes bounds a round's adaptive probing burst.
	maxAdaptiveProbes = 15
	// beliefRetention decays belief toward 0.5 between rounds, modelling
	// the baseline's state-transition probability: evidence ages, blocks
	// change state. This is what makes single-probe inference of sparse
	// blocks unstable (Fig 27) where a 256-probe census is not.
	beliefRetention = 0.85
)

// Eligibility thresholds.
const (
	MinEverActive      = 15
	MinAvailability    = 0.1
	IndeterminateBelow = 0.3
)

// State is a block's inferred state.
type State uint8

// Block states.
const (
	StateUnknown State = iota
	StateUp
	StateDown
	StateUncertain
)

func (s State) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateDown:
		return "down"
	case StateUncertain:
		return "uncertain"
	}
	return "unknown"
}

// BlockTracker tracks one /24 block's belief.
type BlockTracker struct {
	Block netmodel.BlockID
	// EverActive is E(b): the representative addresses, most reliable
	// first; at most 15 are probed.
	EverActive []netmodel.Addr
	// A is the long-term per-address availability.
	A float64

	belief float64
	cursor int
	state  State
}

// NewBlockTracker initializes a tracker with prior belief 0.5.
func NewBlockTracker(block netmodel.BlockID, everActive []netmodel.Addr, availability float64) *BlockTracker {
	if len(everActive) > MinEverActive {
		everActive = everActive[:MinEverActive]
	}
	a := availability
	if a < 0.02 {
		a = 0.02
	}
	if a > 0.98 {
		a = 0.98
	}
	return &BlockTracker{Block: block, EverActive: everActive, A: a, belief: 0.5, state: StateUnknown}
}

// Eligible reports the baseline's block-eligibility rule.
func Eligible(everActive int, availability float64) bool {
	return everActive >= MinEverActive && availability >= MinAvailability
}

// Belief returns the current belief that the block is up.
func (t *BlockTracker) Belief() float64 { return t.belief }

// State returns the block's inferred state.
func (t *BlockTracker) State() State { return t.state }

// update applies Bayes' rule for one probe outcome.
func (t *BlockTracker) update(positive bool) {
	var pUp, pDown float64
	if positive {
		pUp, pDown = t.A, 0.001 // replies from down blocks are spoofs/noise
	} else {
		pUp, pDown = 1-t.A, 0.999
	}
	num := t.belief * pUp
	den := num + (1-t.belief)*pDown
	if den <= 0 {
		return
	}
	t.belief = num / den
	if t.belief > beliefMax {
		t.belief = beliefMax
	}
	if t.belief < beliefMin {
		t.belief = beliefMin
	}
}

// Round performs one probing round at the given time: the scheduled single
// probe, then adaptive probing while the belief is uncertain. It returns
// the inferred state and the number of probes sent.
func (t *BlockTracker) Round(probe Probe, at time.Time) (State, int) {
	if len(t.EverActive) == 0 {
		t.state = StateUnknown
		return t.state, 0
	}
	t.belief = 0.5 + (t.belief-0.5)*beliefRetention
	probes := 0
	for {
		addr := t.EverActive[t.cursor%len(t.EverActive)]
		t.cursor++
		positive := probe(addr, at)
		t.update(positive)
		probes++
		if positive {
			// A single response is conclusive evidence of life.
			t.belief = beliefMax
			break
		}
		if t.belief <= BeliefDown || t.belief >= BeliefUp {
			break
		}
		if probes >= maxAdaptiveProbes || probes >= len(t.EverActive) {
			break
		}
	}
	switch {
	case t.belief >= BeliefUp:
		t.state = StateUp
	case t.belief <= BeliefDown:
		t.state = StateDown
	default:
		t.state = StateUncertain
	}
	return t.state, probes
}
