package trinocular

import (
	"sync"
	"testing"
	"time"

	"countrymon/internal/dataset"
	"countrymon/internal/netmodel"
	"countrymon/internal/sim"
	"countrymon/internal/timeline"
)

func addrs(blk netmodel.BlockID, n int) []netmodel.Addr {
	out := make([]netmodel.Addr, n)
	for i := range out {
		out[i] = blk.Addr(uint8(i))
	}
	return out
}

func TestBeliefConvergesUp(t *testing.T) {
	blk := netmodel.MustParseBlock("10.0.0.0/24")
	tr := NewBlockTracker(blk, addrs(blk, 15), 0.6)
	probe := Probe(func(netmodel.Addr, time.Time) bool { return true })
	state, probes := tr.Round(probe, time.Unix(0, 0))
	if state != StateUp {
		t.Fatalf("state = %v", state)
	}
	if probes != 1 {
		t.Errorf("a positive first probe should end the round, sent %d", probes)
	}
	if tr.Belief() < BeliefUp {
		t.Errorf("belief = %f", tr.Belief())
	}
}

func TestBeliefConvergesDown(t *testing.T) {
	blk := netmodel.MustParseBlock("10.0.0.0/24")
	tr := NewBlockTracker(blk, addrs(blk, 15), 0.6)
	probe := Probe(func(netmodel.Addr, time.Time) bool { return false })
	var state State
	for i := 0; i < 3; i++ {
		state, _ = tr.Round(probe, time.Unix(0, 0))
	}
	if state != StateDown {
		t.Fatalf("state = %v belief=%f", state, tr.Belief())
	}
}

func TestAdaptiveProbingOnUncertainty(t *testing.T) {
	// Low availability: single negative probes are weak evidence, so the
	// tracker must probe adaptively within the round.
	blk := netmodel.MustParseBlock("10.0.0.0/24")
	tr := NewBlockTracker(blk, addrs(blk, 15), 0.15)
	probe := Probe(func(netmodel.Addr, time.Time) bool { return false })
	_, probes := tr.Round(probe, time.Unix(0, 0))
	if probes < 2 {
		t.Errorf("expected adaptive probing, sent %d", probes)
	}
	if probes > maxAdaptiveProbes {
		t.Errorf("probe burst exceeded cap: %d", probes)
	}
}

func TestLowAvailabilityUnstable(t *testing.T) {
	// Fig 27 behaviour: with low availability, a partially-up block can
	// flap between inferred states even though ground truth is constant.
	blk := netmodel.MustParseBlock("10.0.0.0/24")
	tr := NewBlockTracker(blk, addrs(blk, 15), 0.2)
	// 1 of 15 representative addresses is alive, and like any single
	// unvalidated probe it misses ~12% of attempts (rate limiting).
	probe := Probe(func(a netmodel.Addr, at time.Time) bool {
		if a.HostByte() >= 1 {
			return false
		}
		h := (uint64(a) * 2654435761) ^ (uint64(at.Unix()) * 2246822519)
		h ^= h >> 13
		return h%8 != 0
	})
	states := map[State]int{}
	for i := 0; i < 400; i++ {
		s, _ := tr.Round(probe, time.Unix(int64(i*600), 0))
		states[s]++
	}
	if len(states) < 2 || states[StateUp] == 0 {
		t.Errorf("expected unstable inference over a sparse block, got %v", states)
	}
}

func TestEligible(t *testing.T) {
	if !Eligible(15, 0.1) || Eligible(14, 0.9) || Eligible(100, 0.05) {
		t.Error("eligibility rule wrong")
	}
}

var (
	runnerOnce sync.Once
	runnerSc   *sim.Scenario
	runnerSt   *dataset.Store
)

func runnerFixture(t *testing.T) (*sim.Scenario, *dataset.Store) {
	t.Helper()
	runnerOnce.Do(func() {
		runnerSc = sim.MustBuild(sim.Config{Seed: 42, Scale: 0.02,
			End: timeline.DefaultStart.AddDate(0, 8, 0)})
		runnerSt = runnerSc.GenerateStore(nil)
	})
	return runnerSc, runnerSt
}

func TestRunnerAgainstScenario(t *testing.T) {
	sc, st := runnerFixture(t)
	r := NewRunner(st, sc.Space, sc.Representatives, sc.ProbeFunc())
	if r.NumBlocks() == 0 {
		t.Fatal("no eligible blocks")
	}
	if r.NumBlocks() >= st.NumBlocks() {
		t.Error("Trinocular eligibility should exclude sparse blocks")
	}
	res := r.Run(sc.ProbeFunc())
	if res.ProbesSent == 0 {
		t.Fatal("no probes sent")
	}
	// Probe budget: ≤ 15 per block per round (Table 1).
	rounds := uint64(0)
	for _, m := range res.Missing {
		if !m {
			rounds++
		}
	}
	if max := rounds * uint64(r.NumBlocks()) * maxAdaptiveProbes; res.ProbesSent > max {
		t.Errorf("probes %d exceed budget %d", res.ProbesSent, max)
	}
	// Sanity: in a random mid-campaign round most eligible blocks are up.
	up := res.UpSeries()
	mid := len(up) / 2
	if st.Missing(mid) {
		mid++
	}
	if up[mid] < float32(r.NumBlocks())/4 {
		t.Errorf("only %f of %d blocks up mid-campaign", up[mid], r.NumBlocks())
	}
}

func TestRunnerDetectsCableCut(t *testing.T) {
	sc, st := runnerFixture(t)
	r := NewRunner(st, sc.Space, sc.Representatives, sc.ProbeFunc())
	res := r.Run(sc.ProbeFunc())
	// Status (AS25482) blocks must be inferred down during the May 1 2022
	// cable cut if tracked.
	series, ok := res.PerAS[25482]
	if !ok {
		t.Skip("Status blocks not eligible at this scale")
	}
	tl := st.Timeline()
	cut := tl.Round(time.Date(2022, 5, 1, 12, 0, 0, 0, time.UTC))
	before := tl.Round(time.Date(2022, 4, 20, 12, 0, 0, 0, time.UTC))
	if series[cut] >= series[before] {
		t.Errorf("TRIN signal missed the cable cut: before=%f during=%f", series[before], series[cut])
	}
}

func TestRunnerTenMinuteInterval(t *testing.T) {
	// Exercise the baseline's native cadence on a one-day window.
	sc := sim.MustBuild(sim.Config{Seed: 9, Scale: 0.01,
		Start: timeline.DefaultStart, End: timeline.DefaultStart.AddDate(0, 2, 0),
		Interval: ProbeInterval})
	st := sc.GenerateStore(nil)
	r := NewRunner(st, sc.Space, sc.Representatives, sc.ProbeFunc())
	if r.NumBlocks() == 0 {
		t.Skip("no eligible blocks at this scale")
	}
	res := r.Run(sc.ProbeFunc())
	if res.ProbesSent == 0 {
		t.Fatal("no probes")
	}
}
