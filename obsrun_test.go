package countrymon

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/obs"
	"countrymon/internal/simnet"
)

// smallOpts is a tiny fast campaign over one /24.
func smallOpts(t *testing.T, rounds int) Options {
	t.Helper()
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), outageResponder(5, start, start), start)
	return Options{
		Transport: net,
		Targets:   []Prefix{netmodel.MustParsePrefix("10.0.0.0/24")},
		Start:     start, Rounds: rounds, Interval: time.Hour, Seed: 1,
	}
}

func TestTypedErrors(t *testing.T) {
	t.Run("campaign complete", func(t *testing.T) {
		mon, err := New(smallOpts(t, 1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mon.ScanRound(); err != nil {
			t.Fatal(err)
		}
		if _, err := mon.ScanRound(); !errors.Is(err, ErrCampaignComplete) {
			t.Errorf("ScanRound past end: %v, want ErrCampaignComplete", err)
		}
		if err := mon.MarkMissing(); !errors.Is(err, ErrCampaignComplete) {
			t.Errorf("MarkMissing past end: %v, want ErrCampaignComplete", err)
		}
	})

	t.Run("no checkpoint", func(t *testing.T) {
		mon, err := New(smallOpts(t, 2))
		if err != nil {
			t.Fatal(err)
		}
		if err := mon.Checkpoint(); !errors.Is(err, ErrNoCheckpoint) {
			t.Errorf("Checkpoint without path: %v, want ErrNoCheckpoint", err)
		}
	})

	t.Run("resume mismatch round-trip", func(t *testing.T) {
		dir := t.TempDir()
		opts, _ := killResumeOpts(t, 30, dir+"/a.cmds")
		mon, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		runRounds(t, mon, 12)

		// Timeline mismatch: the error must carry both sides.
		bad, _ := killResumeOpts(t, 35, "")
		bad.ResumeFrom = dir + "/a.cmds"
		_, err = New(bad)
		var mm *ResumeMismatchError
		if !errors.As(err, &mm) {
			t.Fatalf("timeline mismatch: %v, want *ResumeMismatchError", err)
		}
		if mm.Path != dir+"/a.cmds" {
			t.Errorf("Path = %q", mm.Path)
		}
		if mm.WantTimeline.Rounds != 35 || mm.GotTimeline.Rounds != 30 {
			t.Errorf("timelines want/got = %d/%d rounds", mm.WantTimeline.Rounds, mm.GotTimeline.Rounds)
		}
		if mm.WantTimeline.Equal(mm.GotTimeline) {
			t.Error("mismatched timelines compare Equal")
		}
		if s := mm.Error(); !strings.Contains(s, "timeline") {
			t.Errorf("Error() = %q, want it to name the timeline conflict", s)
		}

		// Target mismatch: same shape, different blocks.
		bad2, _ := killResumeOpts(t, 30, "")
		bad2.ResumeFrom = dir + "/a.cmds"
		bad2.Targets = []Prefix{netmodel.MustParsePrefix("10.0.0.0/23")}
		_, err = New(bad2)
		mm = nil
		if !errors.As(err, &mm) {
			t.Fatalf("target mismatch: %v, want *ResumeMismatchError", err)
		}
		if mm.FirstDiff < 0 {
			t.Errorf("FirstDiff = %d, want the first conflicting block index", mm.FirstDiff)
		}
		if mm.WantBlock == mm.GotBlock {
			t.Errorf("Want/GotBlock both %v", mm.WantBlock)
		}
		if s := mm.Error(); !strings.Contains(s, "block") {
			t.Errorf("Error() = %q, want it to name the block conflict", s)
		}

		// A matching campaign still resumes cleanly.
		good, _ := killResumeOpts(t, 30, "")
		good.ResumeFrom = dir + "/a.cmds"
		if _, err := New(good); err != nil {
			t.Errorf("matching resume failed: %v", err)
		}
	})
}

// TestRunCancelWritesCheckpoint cancels Run mid-campaign and requires the
// final checkpoint to be on disk — current through the last handled round —
// by the time Run returns.
func TestRunCancelWritesCheckpoint(t *testing.T) {
	const rounds = 40
	dir := t.TempDir()
	ckpt := dir + "/c.cmds"
	opts, _ := killResumeOpts(t, rounds, ckpt)
	// A cadence the cancellation round never hits, so the final write can
	// only come from Run's shutdown path.
	opts.CheckpointEvery = 1000
	mon, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var seen []int
	err = mon.Run(ctx, RunConfig{
		PreRound: func(round int) error {
			for _, blk := range mon.Store().Blocks() {
				mon.SetRouted(blk, round, true, 25482)
			}
			return nil
		},
		Hooks: Hooks{
			OnRound: func(round int, st Stats) {
				seen = append(seen, round)
				if round == 14 {
					cancel()
				}
			},
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if len(seen) == 0 || seen[len(seen)-1] != 14 {
		t.Fatalf("rounds handled: %v, want to stop right after 14", seen)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint after cancelled Run: %v", err)
	}

	// The checkpoint resumes exactly where Run stopped.
	res, _ := killResumeOpts(t, rounds, "")
	res.ResumeFrom = ckpt
	mon2, err := New(res)
	if err != nil {
		t.Fatal(err)
	}
	if mon2.Round() != 15 {
		t.Fatalf("resumed at round %d, want 15", mon2.Round())
	}
}

// TestRunCompletes drives a campaign end to end through Run and checks hook
// delivery and the completion contract.
func TestRunCompletes(t *testing.T) {
	const rounds = 5
	dir := t.TempDir()
	opts := smallOpts(t, rounds)
	opts.CheckpointPath = dir + "/c.cmds"
	opts.CheckpointEvery = 2
	mon, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	ckpts := 0
	events := map[string]int{}
	err = mon.Run(context.Background(), RunConfig{Hooks: Hooks{
		OnRound:      func(round int, st Stats) { got = append(got, round) },
		OnCheckpoint: func(round int, path string) { ckpts++ },
		OnEvent:      func(ev obs.Event) { events[ev.Kind]++ },
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != rounds {
		t.Fatalf("OnRound fired for %v, want %d rounds", got, rounds)
	}
	if ckpts == 0 {
		t.Error("OnCheckpoint never fired")
	}
	if events["round_scanned"] != rounds {
		t.Errorf("round_scanned events = %d, want %d", events["round_scanned"], rounds)
	}
	if events["campaign_complete"] != 1 {
		t.Errorf("campaign_complete events = %d, want 1", events["campaign_complete"])
	}
	// Finished campaign: Run is a no-op, ScanRound refuses.
	if err := mon.Run(context.Background(), RunConfig{}); err != nil {
		t.Fatalf("Run on finished campaign: %v", err)
	}
	if _, err := mon.ScanRound(); !errors.Is(err, ErrCampaignComplete) {
		t.Fatalf("ScanRound after Run: %v", err)
	}
}

// metricValue digs one sample out of the /metrics?format=json export:
// plain counters/gauges by name, labeled families by name plus one
// label=value selector.
func metricValue(t *testing.T, doc map[string]json.RawMessage, name, label, value string) uint64 {
	t.Helper()
	raw, ok := doc[name]
	if !ok {
		t.Fatalf("metric %s missing from export", name)
	}
	var m struct {
		Value  *uint64 `json:"value"`
		Gauge  *int64  `json:"gauge"`
		Series []struct {
			Labels map[string]string `json:"labels"`
			Value  uint64            `json:"value"`
		} `json:"series"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("metric %s: %v", name, err)
	}
	if label == "" {
		if m.Value != nil {
			return *m.Value
		}
		if m.Gauge != nil {
			return uint64(*m.Gauge)
		}
		t.Fatalf("metric %s has no scalar value", name)
	}
	for _, s := range m.Series {
		if s.Labels[label] == value {
			return s.Value
		}
	}
	t.Fatalf("metric %s has no series %s=%s", name, label, value)
	return 0
}

// TestMetricsMatchStats is the acceptance check: a campaign run with a live
// registry + bus must export per-round counts on /metrics and /events that
// match the end-of-run CampaignStats exactly.
func TestMetricsMatchStats(t *testing.T) {
	const rounds = 8
	opts := smallOpts(t, rounds)
	opts.Registry = obs.NewRegistry()
	opts.Bus = obs.NewBus(0)
	mon, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Run(context.Background(), RunConfig{}); err != nil {
		t.Fatal(err)
	}
	stats := mon.CampaignStats()
	if stats.Sent == 0 || stats.Valid == 0 {
		t.Fatalf("empty campaign stats: %+v", stats)
	}

	srv := httptest.NewServer(obs.Handler(opts.Registry, opts.Bus))
	defer srv.Close()

	// JSON metrics export vs Stats.
	body := mustGetBody(t, srv.URL+"/metrics?format=json")
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name, label, value string
		want               uint64
	}{
		{"scanner_probes_sent_total", "", "", stats.Sent},
		{"scanner_replies_total", "result", "valid", stats.Valid},
		{"scanner_replies_total", "result", "duplicate", stats.Duplicates},
		{"scanner_send_errors_total", "", "", stats.SendErrors},
		{"scanner_retries_total", "", "", stats.Retries},
		{"monitor_rounds_total", "outcome", "scanned", rounds},
		{"monitor_last_round", "", "", rounds - 1},
	}
	for _, c := range checks {
		if got := metricValue(t, doc, c.name, c.label, c.value); got != c.want {
			t.Errorf("%s{%s=%s} = %d, want %d", c.name, c.label, c.value, got, c.want)
		}
	}

	// Prometheus text export carries the same sent counter.
	text := string(mustGetBody(t, srv.URL+"/metrics"))
	if !strings.Contains(text, "# TYPE scanner_probes_sent_total counter") {
		t.Error("prometheus export missing scanner_probes_sent_total TYPE line")
	}

	// Event stream: one round_scanned per round, with per-round sent counts
	// summing to the campaign total.
	body = mustGetBody(t, srv.URL+"/events?format=json&since=0")
	var evs []obs.Event
	if err := json.Unmarshal(body, &evs); err != nil {
		t.Fatal(err)
	}
	scanned, sentSum := 0, uint64(0)
	for _, ev := range evs {
		if ev.Kind != "round_scanned" {
			continue
		}
		scanned++
		sentSum += uint64(ev.Fields["sent"].(float64))
	}
	if scanned != rounds {
		t.Errorf("round_scanned events = %d, want %d", scanned, rounds)
	}
	if sentSum != stats.Sent {
		t.Errorf("events sum sent=%d, stats.Sent=%d", sentSum, stats.Sent)
	}
}

func mustGetBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}
