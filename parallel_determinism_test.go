package countrymon

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/par"
	"countrymon/internal/regional"
	"countrymon/internal/scanner"
	"countrymon/internal/signals"
	"countrymon/internal/sim"
	"countrymon/internal/simnet"
	"countrymon/internal/trinocular"
)

// The parallel pipeline's contract is that the worker count changes when
// work happens, never what is computed: every sharded hot path must produce
// results identical to the sequential evaluation. These tests pin that down
// by running the same small campaign under COUNTRYMON_WORKERS=1 and =8 and
// comparing outputs byte-for-byte (store) and value-for-value (everything
// else).

func detCfg() sim.Config { return sim.Config{Seed: 1, Scale: 0.02} }

// detPipeline materializes the full analysis pipeline at the given worker
// count and returns its pieces.
type detPipe struct {
	storeBytes []byte
	res        *regional.Result
	asSeries   map[netmodel.ASN]*signals.EntitySeries
	regSeries  map[netmodel.Region]*signals.EntitySeries
	trin       *trinocular.Result
}

func buildDetPipe(t *testing.T, workers string) *detPipe {
	t.Helper()
	t.Setenv(par.EnvWorkers, workers)
	sc := sim.MustBuild(detCfg())
	store := sc.GenerateStore(nil)
	var buf bytes.Buffer
	if _, err := store.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	cl := regional.NewClassifier(sc.Space, sc.GeoDB(), store)
	res := cl.ClassifyAll(regional.DefaultParams())
	b := signals.NewBuilder(store, sc.Space)
	p := &detPipe{
		storeBytes: buf.Bytes(),
		res:        res,
		asSeries:   make(map[netmodel.ASN]*signals.EntitySeries),
		regSeries:  make(map[netmodel.Region]*signals.EntitySeries),
	}
	for _, as := range sc.Space.ASes() {
		p.asSeries[as.ASN] = b.AS(as.ASN)
	}
	for _, r := range netmodel.Regions() {
		p.regSeries[r] = b.Region(res.Regions[r], cl)
	}
	runner := trinocular.NewRunner(store, sc.Space, sc.Representatives, sc.ProbeFunc())
	p.trin = runner.Run(sc.ProbeFunc())
	return p
}

func sameSeries(t *testing.T, name string, a, b *signals.EntitySeries) {
	t.Helper()
	for r := range a.BGP {
		if a.BGP[r] != b.BGP[r] || a.FBS[r] != b.FBS[r] || a.IPS[r] != b.IPS[r] {
			t.Fatalf("%s: series differ at round %d: (%v %v %v) vs (%v %v %v)",
				name, r, a.BGP[r], a.FBS[r], a.IPS[r], b.BGP[r], b.FBS[r], b.IPS[r])
		}
	}
	for m := range a.IPSValidMonth {
		if a.IPSValidMonth[m] != b.IPSValidMonth[m] {
			t.Fatalf("%s: IPS validity differs in month %d", name, m)
		}
	}
}

func TestParallelPipelineMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline twice")
	}
	seq := buildDetPipe(t, "1")
	parl := buildDetPipe(t, "8")

	// Store: byte-identical.
	if !bytes.Equal(seq.storeBytes, parl.storeBytes) {
		t.Fatal("parallel GenerateStore produced a store differing from the sequential one")
	}

	// Classification: identical verdicts per region.
	for r, srr := range seq.res.Regions {
		prr := parl.res.Regions[r]
		if len(srr.AS) != len(prr.AS) || len(srr.Blocks) != len(prr.Blocks) {
			t.Fatalf("%s: classification sizes differ (%d/%d AS, %d/%d blocks)",
				r, len(srr.AS), len(prr.AS), len(srr.Blocks), len(prr.Blocks))
		}
		for asn, c := range srr.AS {
			if prr.AS[asn] != c {
				t.Fatalf("%s AS%d: class %v (seq) vs %v (parallel)", r, asn, c, prr.AS[asn])
			}
		}
		for i, bc := range srr.Blocks {
			pc := prr.Blocks[i]
			if bc.Index != pc.Index || bc.Regional != pc.Regional || bc.MeanShare != pc.MeanShare {
				t.Fatalf("%s block %d: verdict differs", r, bc.Index)
			}
		}
	}

	// Signal series: bit-identical floats (same accumulation order).
	for asn, es := range seq.asSeries {
		sameSeries(t, es.Name, es, parl.asSeries[asn])
	}
	for r, es := range seq.regSeries {
		sameSeries(t, es.Name, es, parl.regSeries[r])
	}

	// Trinocular: identical states and probe counts.
	if seq.trin.ProbesSent != parl.trin.ProbesSent {
		t.Fatalf("probes sent: %d (seq) vs %d (parallel)", seq.trin.ProbesSent, parl.trin.ProbesSent)
	}
	if len(seq.trin.States) != len(parl.trin.States) {
		t.Fatalf("tracked blocks: %d (seq) vs %d (parallel)", len(seq.trin.States), len(parl.trin.States))
	}
	for ti := range seq.trin.States {
		if seq.trin.Blocks[ti] != parl.trin.Blocks[ti] {
			t.Fatalf("tracker %d follows different blocks", ti)
		}
		for r, s := range seq.trin.States[ti] {
			if parl.trin.States[ti][r] != s {
				t.Fatalf("tracker %d round %d: state %v (seq) vs %v (parallel)", ti, r, s, parl.trin.States[ti][r])
			}
		}
	}
	for asn, ss := range seq.trin.PerAS {
		ps := parl.trin.PerAS[asn]
		for r := range ss {
			if ss[r] != ps[r] {
				t.Fatalf("TRIN AS%d round %d: %v (seq) vs %v (parallel)", asn, r, ss[r], ps[r])
			}
		}
	}
}

// TestScanParallelDeterministic pins the multi-shard scan engine's
// determinism: the merged RoundData of an 8-shard ScanParallel round must be
// identical — blocks, masks, counts, stats — whether the shards ran on one
// worker or eight, and across repeated runs.
func TestScanParallelDeterministic(t *testing.T) {
	scanMerged := func(workers string) *scanner.RoundData {
		t.Setenv(par.EnvWorkers, workers)
		resp := simnet.ResponderFunc(func(dst netmodel.Addr, at time.Time) simnet.Reply {
			if dst.HostByte()%3 == 0 {
				return simnet.Reply{Kind: simnet.EchoReply, RTT: 35 * time.Millisecond}
			}
			return simnet.Reply{Kind: simnet.NoReply}
		})
		ts, err := scanner.NewTargetSet([]netmodel.Prefix{netmodel.MustParsePrefix("10.0.0.0/21")}, nil)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Unix(1700000000, 0)
		rd, err := scanner.ScanParallel(t.Context(), ts, 8,
			scanner.Config{Rate: 100000, Seed: 11, Epoch: 3, Cooldown: time.Second},
			func(shard, shards int) (scanner.Transport, scanner.Clock, error) {
				net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), resp, start)
				return net, net, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return rd
	}

	seq := scanMerged("1")
	if seq.Stats.Valid == 0 || seq.Partial {
		t.Fatalf("reference scan unhealthy: %+v", seq.Stats)
	}
	for _, workers := range []string{"8", "1"} {
		parl := scanMerged(workers)
		if !reflect.DeepEqual(seq.Blocks, parl.Blocks) {
			t.Fatalf("workers=%s: merged blocks differ from workers=1", workers)
		}
		if seq.Stats != parl.Stats {
			t.Fatalf("workers=%s: merged stats differ: %+v vs %+v", workers, seq.Stats, parl.Stats)
		}
		if seq.Probed != parl.Probed || seq.ShardTargets != parl.ShardTargets {
			t.Fatalf("workers=%s: coverage differs", workers)
		}
	}
}

// TestParallelStoreRepeatable re-runs the parallel generator and demands
// byte-identical output across runs (no scheduling leakage).
func TestParallelStoreRepeatable(t *testing.T) {
	t.Setenv(par.EnvWorkers, "") // default worker count
	gen := func() []byte {
		sc := sim.MustBuild(detCfg())
		var buf bytes.Buffer
		if _, err := sc.GenerateStore(nil).WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := gen()
	for i := 0; i < 2; i++ {
		if !bytes.Equal(first, gen()) {
			t.Fatalf("run %d produced different store bytes", i+2)
		}
	}
}
