package countrymon

import (
	"testing"
	"time"

	"countrymon/internal/geodb"
	"countrymon/internal/netmodel"
	"countrymon/internal/simnet"
)

// TestMonitorRegionalPipeline exercises the public API's region-level path:
// scan → routedness → geolocation snapshots → classification → detection.
func TestMonitorRegionalPipeline(t *testing.T) {
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	const rounds = 750 // ~62 days bi-hourly, 3 months touched

	// Two providers: one in Kherson (fails mid-campaign), one in Lviv.
	khBlock := netmodel.MustParseBlock("91.198.4.0/24")
	lvBlock := netmodel.MustParseBlock("91.198.5.0/24")
	outFrom := start.Add(40 * 24 * time.Hour)
	outTo := outFrom.Add(3 * 24 * time.Hour)
	truth := simnet.ResponderFunc(func(dst netmodel.Addr, at time.Time) simnet.Reply {
		if dst.Block() == khBlock && !at.Before(outFrom) && at.Before(outTo) {
			return simnet.Reply{Kind: simnet.NoReply}
		}
		if dst.HostByte() < 50 {
			return simnet.Reply{Kind: simnet.EchoReply, RTT: 35 * time.Millisecond}
		}
		return simnet.Reply{Kind: simnet.NoReply}
	})
	wire := simnet.New(netmodel.MustParseAddr("198.51.100.1"), truth, start)

	mon, err := New(Options{
		Transport: wire,
		Targets:   []Prefix{netmodel.MustParsePrefix("91.198.4.0/23")},
		Start:     start, Rounds: rounds, Interval: 2 * time.Hour,
		Rate: 0, Seed: 21,
		Origins: map[BlockID]ASN{khBlock: 64512, lvBlock: 64513},
	})
	if err != nil {
		t.Fatal(err)
	}
	for mon.NextRound() {
		round := mon.Round()
		for _, blk := range mon.Store().Blocks() {
			mon.SetRouted(blk, round, true, 0)
		}
		if _, err := mon.ScanRound(); err != nil {
			t.Fatal(err)
		}
	}

	// Region detection before classification must error.
	if _, err := mon.DetectRegion(netmodel.Kherson); err == nil {
		t.Fatal("DetectRegion worked without classification")
	}

	// Monthly geolocation snapshots: stable assignments.
	months := mon.Timeline().NumMonths()
	snaps := make([]*geodb.Snapshot, months)
	for m := range snaps {
		snaps[m] = geodb.NewSnapshot([]geodb.Entry{
			{Prefix: Prefix{Base: khBlock.First(), Bits: 24}, Country: "UA", Region: netmodel.Kherson, RadiusKM: 50},
			{Prefix: Prefix{Base: lvBlock.First(), Bits: 24}, Country: "UA", Region: netmodel.Lviv, RadiusKM: 50},
		})
	}
	if err := mon.ClassifyRegions(geodb.NewDB(snaps)); err != nil {
		t.Fatal(err)
	}

	if got := mon.RegionalASes(netmodel.Kherson); len(got) != 1 || got[0] != 64512 {
		t.Errorf("Kherson regional ASes = %v", got)
	}
	if got := mon.RegionalASes(netmodel.Lviv); len(got) != 1 || got[0] != 64513 {
		t.Errorf("Lviv regional ASes = %v", got)
	}

	dKh, err := mon.DetectRegion(netmodel.Kherson)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	cut := mon.Timeline().Round(outFrom.Add(12 * time.Hour))
	for _, o := range dKh.Outages {
		if o.Start <= cut && cut < o.End {
			found = true
		}
	}
	if !found {
		t.Errorf("Kherson regional outage not detected (%d outages)", len(dKh.Outages))
	}

	dLv, err := mon.DetectRegion(netmodel.Lviv)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range dLv.Outages {
		if o.Start <= cut && cut < o.End {
			t.Error("Kherson's outage bled into Lviv despite classification")
		}
	}
}

func TestClassifyRegionsValidation(t *testing.T) {
	wire := simnet.New(1, simnet.ResponderFunc(func(netmodel.Addr, time.Time) simnet.Reply {
		return simnet.Reply{}
	}), time.Unix(0, 0))
	mon, err := New(Options{
		Transport: wire,
		Targets:   []Prefix{netmodel.MustParsePrefix("10.0.0.0/24")},
		Start:     time.Unix(0, 0).UTC(), Rounds: 3, Interval: time.Hour,
		Origins: map[BlockID]ASN{netmodel.MustParseBlock("10.0.0.0/24"): 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.ClassifyRegions(nil); err == nil {
		t.Error("nil DB accepted")
	}
	if err := mon.ClassifyRegions(geodb.NewDB(nil)); err == nil {
		t.Error("empty DB accepted")
	}
}
