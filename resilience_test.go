package countrymon

import (
	"bytes"
	"testing"
	"time"

	"countrymon/internal/faults"
	"countrymon/internal/geodb"
	"countrymon/internal/netmodel"
	"countrymon/internal/simnet"
)

// faultCampaign runs a full campaign over the outage responder, optionally
// wrapped in a fault-injecting transport, and returns the finished monitor.
func faultCampaign(t *testing.T, rounds int, prof *faults.Profile) *Monitor {
	t.Helper()
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	outFrom := start.Add(120 * 2 * time.Hour)
	outTo := outFrom.Add(20 * 2 * time.Hour)
	net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), outageResponder(40, outFrom, outTo), start)
	var tr Transport = net
	if prof != nil {
		tr = faults.NewTransport(net, nil, *prof)
	}
	mon, err := New(Options{
		Transport: tr,
		Targets:   []Prefix{netmodel.MustParsePrefix("91.198.4.0/23")},
		Start:     start, Rounds: rounds, Interval: 2 * time.Hour,
		Seed: 7,
		Origins: map[BlockID]ASN{
			netmodel.MustParseBlock("91.198.4.0/24"): 25482,
			netmodel.MustParseBlock("91.198.5.0/24"): 25482,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for mon.NextRound() {
		round := mon.Round()
		for _, blk := range mon.Store().Blocks() {
			mon.SetRouted(blk, round, true, 25482)
		}
		if _, err := mon.ScanRound(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	return mon
}

// khersonDB geolocates every target block to Kherson for all months.
func khersonDB(months int) *geodb.DB {
	snap := geodb.NewSnapshot([]geodb.Entry{
		{Prefix: netmodel.MustParsePrefix("91.198.4.0/23"), Country: geodb.CountryUA,
			Region: netmodel.Kherson, RadiusKM: 50},
	})
	snaps := make([]*geodb.Snapshot, months)
	for i := range snaps {
		snaps[i] = snap
	}
	return geodb.NewDB(snaps)
}

func sameOutages(t *testing.T, label string, got, want []Outage) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d outages, fault-free run has %d\nfaulty:     %+v\nfault-free: %+v",
			label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i].Start != want[i].Start || got[i].End != want[i].End {
			t.Errorf("%s: outage %d is [%d,%d), fault-free [%d,%d)",
				label, i, got[i].Start, got[i].End, want[i].Start, want[i].End)
		}
	}
}

// TestFaultInjectionEndToEnd scripts a vantage blackout over one full round
// plus 1% send-error noise, and checks the campaign completes with the
// blacked-out round gated as unusable — fabricating no outage events that a
// fault-free run does not also report.
func TestFaultInjectionEndToEnd(t *testing.T) {
	const rounds = 200
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

	clean := faultCampaign(t, rounds, nil)
	faulty := faultCampaign(t, rounds, &faults.Profile{
		Seed:          5,
		SendErrorProb: 0.01,
		Windows: []faults.Window{{
			// Covers round 60's whole scan (scheduled at start+120h).
			From: start.Add(120*time.Hour - 30*time.Minute),
			To:   start.Add(120*time.Hour + 90*time.Minute),
			Kind: faults.Blackout,
		}},
	})

	// The blacked-out round was salvaged as (near-)empty, not fabricated
	// into data: its coverage is below the signals gate.
	if cov := faulty.Store().Coverage(60); cov >= 0.8 && !faulty.Store().Missing(60) {
		t.Fatalf("blacked-out round 60 has coverage %v and is not missing", cov)
	}
	// The noise rounds were fully recovered by retries.
	for _, r := range []int{0, 59, 61, rounds - 1} {
		if cov := faulty.Store().Coverage(r); cov != 1 {
			t.Errorf("round %d coverage %v, want 1 (noise must be retried away)", r, cov)
		}
	}

	cleanAS := clean.DetectAS(25482)
	faultyAS := faulty.DetectAS(25482)
	sameOutages(t, "DetectAS", faultyAS.Outages, cleanAS.Outages)
	if len(cleanAS.Outages) != 1 || cleanAS.Outages[0].Start != 120 {
		t.Fatalf("fault-free baseline lost the real outage: %+v", cleanAS.Outages)
	}

	months := clean.Timeline().NumMonths()
	for _, m := range []*Monitor{clean, faulty} {
		if err := m.ClassifyRegions(khersonDB(months)); err != nil {
			t.Fatal(err)
		}
	}
	cleanReg, err := clean.DetectRegion(netmodel.Kherson)
	if err != nil {
		t.Fatal(err)
	}
	faultyReg, err := faulty.DetectRegion(netmodel.Kherson)
	if err != nil {
		t.Fatal(err)
	}
	sameOutages(t, "DetectRegion", faultyReg.Outages, cleanReg.Outages)
}

// killResumeOpts builds the shared option set of the kill/resume test.
func killResumeOpts(t *testing.T, rounds int, ckpt string) (Options, time.Time) {
	t.Helper()
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	outFrom := start.Add(30 * 2 * time.Hour)
	outTo := outFrom.Add(10 * 2 * time.Hour)
	net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), outageResponder(40, outFrom, outTo), start)
	return Options{
		Transport: net,
		Targets:   []Prefix{netmodel.MustParsePrefix("91.198.4.0/23")},
		Start:     start, Rounds: rounds, Interval: 2 * time.Hour,
		Seed: 7,
		Origins: map[BlockID]ASN{
			netmodel.MustParseBlock("91.198.4.0/24"): 25482,
			netmodel.MustParseBlock("91.198.5.0/24"): 25482,
		},
		CheckpointPath:  ckpt,
		CheckpointEvery: 10,
	}, start
}

func runRounds(t *testing.T, mon *Monitor, stopAt int) {
	t.Helper()
	for mon.NextRound() && (stopAt < 0 || mon.Round() < stopAt) {
		round := mon.Round()
		for _, blk := range mon.Store().Blocks() {
			mon.SetRouted(blk, round, true, 25482)
		}
		if _, err := mon.ScanRound(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestKillResumeByteIdentical kills a checkpointed campaign mid-run,
// resumes it from disk in a fresh monitor, and requires the final store to
// be byte-identical to — and the detections indistinguishable from — an
// uninterrupted run.
func TestKillResumeByteIdentical(t *testing.T) {
	const rounds = 60
	dir := t.TempDir()

	// Uninterrupted reference run.
	refOpts, _ := killResumeOpts(t, rounds, dir+"/ref.cmds")
	ref, err := New(refOpts)
	if err != nil {
		t.Fatal(err)
	}
	runRounds(t, ref, -1)
	var refBytes bytes.Buffer
	if _, err := ref.Store().WriteTo(&refBytes); err != nil {
		t.Fatal(err)
	}

	// Killed run: stops after round 25. The last checkpoint on disk is
	// from round 20 (cadence 10), so up to CheckpointEvery rounds of work
	// are redone on resume.
	killOpts, _ := killResumeOpts(t, rounds, dir+"/killed.cmds")
	killed, err := New(killOpts)
	if err != nil {
		t.Fatal(err)
	}
	runRounds(t, killed, 25)

	// Resume in a fresh monitor over a fresh virtual network: rounds are
	// scheduled on the timeline, so the replayed rounds land at the same
	// virtual instants and the scan is deterministic.
	resOpts, _ := killResumeOpts(t, rounds, dir+"/killed.cmds")
	resOpts.ResumeFrom = dir + "/killed.cmds"
	res, err := New(resOpts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Round() != 20 {
		t.Fatalf("resumed at round %d, want 20 (last checkpoint)", res.Round())
	}
	runRounds(t, res, -1)

	var resBytes bytes.Buffer
	if _, err := res.Store().WriteTo(&resBytes); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refBytes.Bytes(), resBytes.Bytes()) {
		t.Fatalf("resumed store differs from uninterrupted run (%d vs %d bytes)",
			resBytes.Len(), refBytes.Len())
	}

	refDet := ref.DetectAS(25482)
	resDet := res.DetectAS(25482)
	sameOutages(t, "DetectAS after resume", resDet.Outages, refDet.Outages)
	if len(refDet.Outages) != 1 {
		t.Fatalf("reference run outages = %+v, want the scripted one", refDet.Outages)
	}
}

// TestResumeRejectsMismatchedCampaign guards the resume validation: a
// checkpoint from a different campaign must not be silently adopted.
func TestResumeRejectsMismatchedCampaign(t *testing.T) {
	const rounds = 30
	dir := t.TempDir()
	opts, _ := killResumeOpts(t, rounds, dir+"/a.cmds")
	mon, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	runRounds(t, mon, 12)

	// Different round count.
	bad, _ := killResumeOpts(t, rounds+5, "")
	bad.ResumeFrom = dir + "/a.cmds"
	if _, err := New(bad); err == nil {
		t.Error("timeline mismatch accepted")
	}
	// Different targets.
	bad2, _ := killResumeOpts(t, rounds, "")
	bad2.ResumeFrom = dir + "/a.cmds"
	bad2.Targets = []Prefix{netmodel.MustParsePrefix("10.0.0.0/23")}
	if _, err := New(bad2); err == nil {
		t.Error("target mismatch accepted")
	}
	// Missing file.
	bad3, _ := killResumeOpts(t, rounds, "")
	bad3.ResumeFrom = dir + "/nope.cmds"
	if _, err := New(bad3); err == nil {
		t.Error("missing checkpoint accepted")
	}
}
