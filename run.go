package countrymon

import (
	"context"
	"errors"
	"time"

	"countrymon/internal/obs"
)

// Hooks are per-round observation callbacks for Run. All fields are
// optional; hooks run synchronously on the campaign goroutine, so they must
// not block for long.
type Hooks struct {
	// OnRound fires after each round is handled (scanned, salvaged or
	// missing) with the round index and its scan statistics.
	OnRound func(round int, st Stats)
	// OnCheckpoint fires after every successful checkpoint write.
	OnCheckpoint func(round int, path string)
	// OnEvent receives every structured event the monitor emits (round
	// lifecycle, checkpoints, detections) — the same stream Options.Bus
	// carries, delivered in-process.
	OnEvent func(ev obs.Event)
}

// RunConfig configures one Run invocation.
type RunConfig struct {
	Hooks Hooks
	// PreRound, when non-nil, runs before each round is scanned — the place
	// to apply BGP snapshots or decide to MarkMissing. Returning an error
	// aborts the campaign (after a checkpoint, if one is configured).
	PreRound func(round int) error
}

// Run drives the campaign to completion: every remaining round is scanned
// in sequence, hooks fire per round and per checkpoint, and ctx cancellation
// stops the campaign at the next round boundary — after writing a final
// checkpoint when CheckpointPath is set, so the campaign resumes exactly
// where it stopped. It returns nil on completion, ctx's error on
// cancellation, or the first hard scan/checkpoint/PreRound error.
//
// Run replaces the hand-rolled `for mon.NextRound() { mon.ScanRound() }`
// loop, which remains supported.
func (m *Monitor) Run(ctx context.Context, rc RunConfig) error {
	for m.NextRound() {
		if _, err := m.Step(ctx, rc); err != nil {
			return err
		}
	}
	return nil
}

// Step handles exactly one round under Run's semantics — ctx check, PreRound,
// scan, OnRound — and returns the round's scan statistics. It is the unit Run
// loops over; campaign coordinators (internal/campaign) call it directly to
// interleave rounds of several monitors on one goroutine. Like Run, a ctx
// cancellation or PreRound error checkpoints before returning.
func (m *Monitor) Step(ctx context.Context, rc RunConfig) (Stats, error) {
	m.hooks = rc.Hooks
	defer func() { m.hooks = Hooks{} }()
	if ctx.Err() != nil {
		return Stats{}, m.checkpointBeforeReturn(ctx.Err())
	}
	if rc.PreRound != nil {
		if err := rc.PreRound(m.round); err != nil {
			return Stats{}, m.checkpointBeforeReturn(err)
		}
	}
	round := m.round
	st, err := m.ScanRoundContext(ctx)
	if err != nil {
		if ctx.Err() != nil {
			return Stats{}, m.checkpointBeforeReturn(ctx.Err())
		}
		return Stats{}, err
	}
	if rc.Hooks.OnRound != nil {
		rc.Hooks.OnRound(round, st)
	}
	return st, nil
}

// checkpointBeforeReturn persists progress before surfacing cause, so an
// interrupted campaign loses nothing that was already measured. Without a
// CheckpointPath it returns cause untouched.
func (m *Monitor) checkpointBeforeReturn(cause error) error {
	if m.opts.CheckpointPath == "" {
		return cause
	}
	if err := m.Checkpoint(); err != nil {
		return errors.Join(cause, err)
	}
	return cause
}

// CampaignStats returns the accumulated scan statistics of every round
// handled so far (scanned and salvaged rounds; rounds marked missing add
// nothing).
func (m *Monitor) CampaignStats() Stats { return m.campaign }

// emit publishes one structured event to the bus (when configured) and the
// active OnEvent hook. It is a no-op — no field-map allocation — when
// neither sink is attached.
func (m *Monitor) emit(kind string, fields func() map[string]any) {
	if m.bus == nil && m.hooks.OnEvent == nil {
		return
	}
	ev := m.bus.Publish(kind, fields())
	if m.hooks.OnEvent != nil {
		m.hooks.OnEvent(ev)
	}
}

// emitDetection reports a detection run on the bus/hook.
func (m *Monitor) emitDetection(entity string, d *Detection) {
	m.emit("detection", func() map[string]any {
		return map[string]any{
			"entity": entity, "outages": len(d.Outages),
			"flagged_rounds": d.TotalRounds(),
		}
	})
}

// monMetrics are the Monitor's own instruments (the scanner's live inside
// scanner.Metrics). All fields are nil — inert — without a registry.
type monMetrics struct {
	roundsScanned  *obs.Counter   // monitor_rounds_total{outcome=scanned}
	roundsSalvaged *obs.Counter   // monitor_rounds_total{outcome=salvaged}
	roundsMissing  *obs.Counter   // monitor_rounds_total{outcome=missing}
	roundDur       *obs.Histogram // monitor_round_duration_seconds
	coverage       *obs.Histogram // monitor_round_coverage
	ckptTotal      *obs.Counter   // monitor_checkpoint_total
	ckptDur        *obs.Histogram // monitor_checkpoint_seconds
	lastRound      *obs.Gauge     // monitor_last_round
	resumeRound    *obs.Gauge     // monitor_resume_round
}

func newMonMetrics(reg *obs.Registry) *monMetrics {
	rounds := reg.CounterVec("monitor_rounds_total",
		"Campaign rounds handled, by outcome.", "outcome")
	return &monMetrics{
		roundsScanned:  rounds.With("scanned"),
		roundsSalvaged: rounds.With("salvaged"),
		roundsMissing:  rounds.With("missing"),
		roundDur: reg.Histogram("monitor_round_duration_seconds",
			"Scan-round duration in campaign time.", 0),
		coverage: reg.Histogram("monitor_round_coverage",
			"Fraction of targets probed per round.", 0),
		ckptTotal: reg.Counter("monitor_checkpoint_total",
			"Checkpoint files written."),
		ckptDur: reg.Histogram("monitor_checkpoint_seconds",
			"Checkpoint write latency (wall clock).", 0),
		lastRound: reg.Gauge("monitor_last_round",
			"Most recently handled round index."),
		resumeRound: reg.Gauge("monitor_resume_round",
			"Round the campaign resumed from (0 for fresh campaigns)."),
	}
}

// roundAt formats a round's scheduled time for events.
func roundAt(at time.Time) string { return at.UTC().Format(time.RFC3339) }
