package countrymon

import (
	"io"
	"math"
	"net/http/httptest"
	"testing"

	"countrymon/internal/obs"
	"countrymon/internal/par"
	"countrymon/internal/serve"
	"countrymon/internal/signals"
)

// The serving read path rides along with the campaign: AttachServe seals
// every handled round into a serve.Store as it folds. These tests pin the
// wiring down end to end — live incremental sealing matches the streaming
// series, and serve API responses are byte-identical across worker counts.

// runServedCampaign runs the standard 200-round outage campaign with a
// serve store attached from round 0 and AS 25482 registered as an entity.
func runServedCampaign(t *testing.T, rounds int) (*Monitor, *serve.Store, *serve.Entity) {
	t.Helper()
	mon, err := New(streamOpts(rounds, true, ""))
	if err != nil {
		t.Fatal(err)
	}
	tls := serve.NewStore(mon.Timeline())
	mon.AttachServe(tls)
	ent, err := tls.Register("asn", "25482", mon.ServeASSource(25482), serve.DetectWith(signals.ASConfig()))
	if err != nil {
		t.Fatal(err)
	}
	for mon.NextRound() {
		round := mon.Round()
		for _, blk := range mon.Store().Blocks() {
			mon.SetRouted(blk, round, true, 25482)
		}
		if round == 7 || round == 8 {
			// A vantage outage: MarkMissing must seal the round too.
			if err := mon.MarkMissing(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if _, err := mon.ScanRound(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got := tls.Watermark(); got != round+1 {
			t.Fatalf("round %d sealed, watermark = %d", round, got)
		}
	}
	return mon, tls, ent
}

func TestMonitorServeStoreLive(t *testing.T) {
	const rounds = 200
	mon, tls, ent := runServedCampaign(t, rounds)

	if tls.Watermark() != rounds {
		t.Fatalf("watermark = %d, want %d", tls.Watermark(), rounds)
	}

	// The campaign fits one month and every block is active from round 0,
	// so no FBS backfill ever fires: the as-published sealed columns must
	// be bit-identical to the final streaming series.
	es := mon.ASSeries(25482)
	for r := 0; r < rounds; r++ {
		if ent.Missing(r) != es.Missing[r] {
			t.Fatalf("round %d: missing %v vs %v", r, ent.Missing(r), es.Missing[r])
		}
		if math.Float32bits(ent.BGP(r)) != math.Float32bits(es.BGP[r]) ||
			math.Float32bits(ent.FBS(r)) != math.Float32bits(es.FBS[r]) ||
			math.Float32bits(ent.IPS(r)) != math.Float32bits(es.IPS[r]) {
			t.Fatalf("round %d: sealed (%g, %g, %g) vs series (%g, %g, %g)", r,
				ent.BGP(r), ent.FBS(r), ent.IPS(r), es.BGP[r], es.FBS[r], es.IPS[r])
		}
	}
	if !ent.Missing(7) || !ent.Missing(8) {
		t.Fatal("MarkMissing rounds not sealed as missing")
	}

	// Store-side detection over the sealed view agrees with the monitor's.
	sameOutages(t, "serve detection", tls.Detection(ent).Outages, mon.DetectAS(25482).Outages)
	if len(tls.Detection(ent).Outages) != 1 {
		t.Fatalf("outages = %+v, want the scripted one", tls.Detection(ent).Outages)
	}
}

func TestMonitorAttachServeMidCampaign(t *testing.T) {
	const rounds = 120
	mon, err := New(streamOpts(rounds, true, ""))
	if err != nil {
		t.Fatal(err)
	}
	tls := serve.NewStore(mon.Timeline())
	for mon.NextRound() {
		round := mon.Round()
		for _, blk := range mon.Store().Blocks() {
			mon.SetRouted(blk, round, true, 25482)
		}
		if round == 50 {
			// Attaching mid-campaign seals the already-handled prefix.
			mon.AttachServe(tls)
			if got := tls.Watermark(); got != 50 {
				t.Fatalf("watermark after mid-campaign attach = %d, want 50", got)
			}
		}
		if _, err := mon.ScanRound(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if tls.Watermark() != rounds {
		t.Fatalf("watermark = %d, want %d", tls.Watermark(), rounds)
	}
	// Late registration backfills the sealed prefix from the live builder.
	ent, err := tls.Register("asn", "25482", mon.ServeASSource(25482), nil)
	if err != nil {
		t.Fatal(err)
	}
	es := mon.ASSeries(25482)
	for r := 0; r < rounds; r++ {
		if ent.BGP(r) != es.BGP[r] || ent.FBS(r) != es.FBS[r] || ent.IPS(r) != es.IPS[r] {
			t.Fatalf("round %d: backfilled (%g, %g, %g) vs series (%g, %g, %g)", r,
				ent.BGP(r), ent.FBS(r), ent.IPS(r), es.BGP[r], es.FBS[r], es.IPS[r])
		}
	}
}

// TestServeResponsesWorkerInvariant is the acceptance criterion for the
// parallel pipeline: serve API responses rendered from campaigns run under
// COUNTRYMON_WORKERS=1 and =8 are byte-identical.
func TestServeResponsesWorkerInvariant(t *testing.T) {
	paths := []string{
		"/v1/series?entity=asn/25482",
		"/v1/series?entity=asn/25482&limit=64&offset=100",
		"/v1/series?entity=asn/25482&since=150",
		"/v1/outages?entity=asn/25482",
		"/v1/entities",
	}
	fetch := func(workers string) map[string]string {
		t.Helper()
		t.Setenv(par.EnvWorkers, workers)
		_, tls, _ := runServedCampaign(t, 200)
		srv := httptest.NewServer(serve.NewServer(tls))
		defer srv.Close()
		out := make(map[string]string, len(paths))
		for _, p := range paths {
			resp, err := srv.Client().Get(srv.URL + p)
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != 200 {
				t.Fatalf("workers=%s GET %s: status %d", workers, p, resp.StatusCode)
			}
			if len(body) == 0 {
				t.Fatalf("workers=%s GET %s: empty body", workers, p)
			}
			out[p] = string(body)
		}
		return out
	}
	seq, par8 := fetch("1"), fetch("8")
	for _, p := range paths {
		if seq[p] != par8[p] {
			t.Errorf("GET %s differs between 1 and 8 workers:\n  %s\n  %s", p, seq[p], par8[p])
		}
	}
}

// TestMonitorServeEvents wires the full observable stack: a monitor with a
// bus publishes round events while the serve server fans them out over SSE.
func TestMonitorServeEvents(t *testing.T) {
	bus := obs.NewBus(64)
	opts := streamOpts(6, true, "")
	opts.Bus = bus
	mon, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	tls := serve.NewStore(mon.Timeline())
	mon.AttachServe(tls)
	s := serve.NewServer(tls)
	s.Observe(obs.NewRegistry(), bus)
	for mon.NextRound() {
		if _, err := mon.ScanRound(); err != nil {
			t.Fatal(err)
		}
	}
	if bus.Seq() == 0 {
		t.Fatal("campaign published no events")
	}
	// The server's event endpoint replays the bus backlog on long-poll.
	srv := httptest.NewServer(s)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/v1/events?format=json&since=0")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || len(body) == 0 {
		t.Fatalf("events long-poll: status %d, %d bytes", resp.StatusCode, len(body))
	}
}
